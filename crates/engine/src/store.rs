//! CLV storage policies.
//!
//! A [`ManagedStore`] holds the reference tree's directional CLVs in an AMC
//! slot arena. The two operating points of the paper fall out of the slot
//! count:
//!
//! * `ManagedStore::full` — one slot per CLV (`3(n−2)`), EPA-NG's default
//!   memory layout: after a warm-up sweep nothing is ever recomputed;
//! * `ManagedStore::with_slots` — any budget down to `⌈log₂ n⌉ + 2`,
//!   where CLVs are recomputed on demand under the chosen replacement
//!   strategy.
//!
//! The protocol is *prepare → read → release*: `prepare` makes a set of
//! directed edges resident and pins them, `side` hands out kernel-ready
//! views, `release` unpins.
//!
//! The store is internally synchronized (`&self` API, `Sync`): planning
//! is serialized by the slot manager's plan lock, execution runs
//! lock-free under execution pins, and readers of a prepared block's
//! pinned CLVs touch no lock at all (residency lookups are atomic
//! loads). Distinct blocks can therefore be prepared and read by
//! different threads concurrently; kernel scratch buffers come from an
//! internal pool so concurrent recomputations do not contend on them.

use std::sync::Mutex;

use crate::ctx::ReferenceContext;
use crate::error::EngineError;
use crate::exec;
use phylo_amc::{ensure_resident, ClvKey, ResidentSet, SlotArena, SlotId, SlotStats, StrategyKind};
use phylo_kernel::kernels::Side;
use phylo_kernel::sitepar::{PoolStats, SiteParPool};
use phylo_kernel::KernelScratch;
use phylo_tree::{DirEdgeId, NodeId};

/// One side of a branch, as stored: either a leaf (tips are not slotted)
/// or a resident CLV.
#[derive(Debug, Clone, Copy)]
pub enum EdgeSide {
    /// The side is a single leaf.
    Tip(NodeId),
    /// The side's CLV is resident in this slot.
    Resident(SlotId),
}

/// Reusable kernel working buffers, checked out per preparation so
/// concurrent recomputations each get their own set. Steady state
/// allocates nothing: buffers return to the pool and their capacity is
/// retained.
struct ScratchPool {
    pool: Mutex<Vec<KernelScratch>>,
}

impl ScratchPool {
    fn new() -> Self {
        ScratchPool { pool: Mutex::new(vec![KernelScratch::new()]) }
    }

    fn checkout(&self) -> KernelScratch {
        phylo_obs::counter("engine.scratch.checkouts").inc();
        match self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            Some(s) => s,
            None => {
                // Pool churn: a fresh allocation means a buffer was lost
                // or more preparations run concurrently than ever before.
                phylo_obs::counter("engine.scratch.allocs").inc();
                KernelScratch::new()
            }
        }
    }

    fn checkin(&self, scratch: KernelScratch) {
        if phylo_faults::fire("engine::scratch_lost") {
            // Simulates scratch-pool exhaustion: the buffer is dropped
            // instead of returned. Recovery is built in — the next
            // checkout simply allocates a fresh one.
            phylo_obs::counter("engine.scratch.lost").inc();
            drop(scratch);
            return;
        }
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(scratch);
    }
}

/// Slot-managed directional CLV store for a reference tree.
pub struct ManagedStore {
    arena: SlotArena,
    /// Across-site chunks used when recomputing CLVs (1 = serial).
    compute_threads: usize,
    /// Persistent site-parallel worker pool: created (once) by
    /// [`ManagedStore::set_compute_threads`], parked between kernel
    /// calls, so per-op parallelism never spawns threads.
    sitepar: Option<SiteParPool>,
    /// Kernel working buffers, reused across every recomputation this
    /// store performs (only the generic kernel fallback touches them).
    scratch: ScratchPool,
}

/// A pinned, resident set of directed edges returned by
/// [`ManagedStore::prepare`]. Multiple blocks may be outstanding at once
/// (current + prefetched); each must be returned via
/// [`ManagedStore::release`].
#[derive(Debug)]
pub struct PreparedBlock {
    rs: ResidentSet,
}

impl PreparedBlock {
    /// Number of compute steps this preparation needed (0 = fully cached).
    pub fn ops(&self) -> usize {
        self.rs.ops.len()
    }
}

/// A planned-but-not-yet-computed block from
/// [`ManagedStore::plan_prepare`]: pins are taken, compute steps are
/// pending.
#[derive(Debug)]
pub struct PendingBlock {
    rs: ResidentSet,
    next_op: usize,
}

impl PendingBlock {
    /// Remaining compute steps.
    pub fn remaining(&self) -> usize {
        self.rs.ops.len() - self.next_op
    }

    /// Converts into a readable block once every step has executed (the
    /// final [`ManagedStore::execute_one`] call has already released the
    /// execution pins and synchronized the targets).
    pub fn into_prepared(self) -> PreparedBlock {
        assert_eq!(self.next_op, self.rs.ops.len(), "pending block has unexecuted steps");
        PreparedBlock { rs: self.rs }
    }
}

/// Alias kept for API clarity where "any storage policy" is meant.
pub type ClvStore = ManagedStore;

/// Full-memory store: a managed store with one slot per CLV.
pub type FullStore = ManagedStore;

impl std::fmt::Debug for ManagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedStore")
            .field("arena", &self.arena)
            .field("compute_threads", &self.compute_threads)
            .finish()
    }
}

impl ManagedStore {
    /// A store with an explicit slot budget and replacement strategy.
    pub fn with_slots(
        ctx: &ReferenceContext,
        n_slots: usize,
        strategy: StrategyKind,
    ) -> Result<Self, EngineError> {
        let min = ctx.min_slots();
        if n_slots < min {
            return Err(EngineError::Amc(phylo_amc::AmcError::TooFewSlots {
                requested: n_slots,
                minimum: min,
            }));
        }
        let n_slots = n_slots.min(ctx.max_slots().max(min));
        let costs = strategy.needs_costs().then(|| ctx.cost_table());
        let arena = SlotArena::try_new(
            ctx.tree().n_dir_edges(),
            n_slots,
            ctx.layout().clv_len(),
            ctx.layout().patterns,
            strategy.build(costs),
        )?;
        Ok(ManagedStore { arena, compute_threads: 1, sitepar: None, scratch: ScratchPool::new() })
    }

    /// A store with a caller-supplied replacement strategy — the paper's
    /// customization point ("a generic replacement strategy interface via
    /// a set of callback functions", §IV).
    pub fn with_strategy(
        ctx: &ReferenceContext,
        n_slots: usize,
        strategy: Box<dyn phylo_amc::ReplacementStrategy>,
    ) -> Result<Self, EngineError> {
        let min = ctx.min_slots();
        if n_slots < min {
            return Err(EngineError::Amc(phylo_amc::AmcError::TooFewSlots {
                requested: n_slots,
                minimum: min,
            }));
        }
        let n_slots = n_slots.min(ctx.max_slots().max(min));
        let arena = SlotArena::try_new(
            ctx.tree().n_dir_edges(),
            n_slots,
            ctx.layout().clv_len(),
            ctx.layout().patterns,
            strategy,
        )?;
        Ok(ManagedStore { arena, compute_threads: 1, sitepar: None, scratch: ScratchPool::new() })
    }

    /// The full-memory store (`3(n−2)` slots, EPA-NG default mode).
    pub fn full(ctx: &ReferenceContext) -> Self {
        Self::with_slots(ctx, ctx.max_slots().max(ctx.min_slots()), StrategyKind::CostBased)
            .expect("full slot count is always above the minimum")
    }

    /// Sets the number of chunks used for across-site parallel CLV
    /// recomputation (the paper's Fig. 7 mode). 1 = serial. For `n > 1`
    /// this creates the store's persistent [`SiteParPool`] once; workers
    /// park between kernel calls, so changing the count mid-run is the
    /// only operation that (re)spawns threads.
    pub fn set_compute_threads(&mut self, n: usize) {
        let n = n.max(1);
        if n != self.compute_threads || (n > 1) != self.sitepar.is_some() {
            self.sitepar = (n > 1).then(|| SiteParPool::new(n));
        }
        self.compute_threads = n;
    }

    /// Counters of the store's site-parallel pool (zeros when the store
    /// computes serially and owns no pool).
    pub fn sitepar_stats(&self) -> PoolStats {
        self.sitepar.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Number of physical slots.
    pub fn n_slots(&self) -> usize {
        self.arena.n_slots()
    }

    /// Sets the watchdog deadline for publish-latch waits (see
    /// [`phylo_amc::SlotManager::set_wait_timeout`]).
    pub fn set_wait_timeout(&self, timeout: std::time::Duration) {
        self.arena.manager().set_wait_timeout(timeout);
    }

    /// Installs the run's cooperative shutdown token (see
    /// [`phylo_amc::CancelToken`]): once cancelled, publish-latch waits
    /// unblock and schedule execution stops between Felsenstein steps
    /// with [`phylo_amc::AmcError::Cancelled`]. In-flight schedules are
    /// aborted through the normal failure path, so the store remains
    /// consistent and reusable.
    pub fn set_cancel_token(&self, token: &phylo_amc::CancelToken) {
        self.arena.manager().set_cancel_token(token);
    }

    /// Arms a slot-access trace recorder on the slot manager: every
    /// subsequent table operation appends one event in serialization
    /// order (see `phylo_obs::slottrace`). Install it before traffic
    /// starts so the offline replay sees the whole run.
    pub fn set_slot_trace(&self, trace: std::sync::Arc<phylo_obs::slottrace::SlotTrace>) {
        self.arena.manager().set_slot_trace(Some(trace));
    }

    /// Slot traffic counters (hits/misses/evictions).
    pub fn stats(&self) -> SlotStats {
        self.arena.stats()
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&self) {
        self.arena.manager().reset_stats();
    }

    /// Bytes held by the slot storage (the `--maxmem`-controlled term).
    pub fn bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Makes every directed edge in `dirs` resident and pinned, computing
    /// whatever the slot state requires. The returned block keeps the CLVs
    /// pinned; hand it back to [`Self::release`] when done reading.
    /// Multiple blocks may be outstanding (e.g. current + prefetched),
    /// provided enough slots stay unpinned for further traversals.
    ///
    /// Safe to call from several threads at once: planners serialize on
    /// the slot manager's plan lock, executions overlap. Under a tight
    /// slot budget a concurrent caller may get `AllSlotsPinned` while
    /// another plan's working set is pinned — that is a retryable
    /// condition, not a deadlock (the other plan always completes).
    pub fn prepare(
        &self,
        ctx: &ReferenceContext,
        dirs: &[DirEdgeId],
    ) -> Result<PreparedBlock, EngineError> {
        let mut rs = ensure_resident(ctx.tree(), dirs, self.arena.manager(), ctx.register_need())?;
        self.demote_evicted(&mut rs);
        let mut scratch = self.scratch.checkout();
        let run = match &self.sitepar {
            None => exec::execute_ops(ctx, &self.arena, &rs.ops, &mut scratch),
            Some(pool) => exec::execute_ops_par(
                ctx,
                &self.arena,
                &rs.ops,
                pool,
                self.compute_threads,
                &mut scratch,
            ),
        };
        self.scratch.checkin(scratch);
        if let Err(e) = run {
            self.abort_schedule(rs);
            return Err(e);
        }
        rs.release_exec(self.arena.manager());
        self.sync_targets(&rs)?;
        Ok(PreparedBlock { rs })
    }

    /// Tears down a schedule that will never finish executing: releases
    /// every pin it holds and, under the plan guard, invalidates its
    /// installed-but-unpublished targets so a later plan does not treat
    /// them as resident and wait on a publish that will never come.
    /// Slots another plan has meanwhile pinned are left alone — that
    /// plan's own bounded wait surfaces the failure.
    fn abort_schedule(&self, mut rs: phylo_amc::ResidentSet) {
        let mgr = self.arena.manager();
        rs.release(mgr);
        let _plan = mgr.plan_guard();
        for op in &rs.ops {
            let clv = ClvKey(op.target.0);
            if mgr.lookup(clv) == Some(op.slot)
                && !mgr.is_ready(op.slot)
                && mgr.pin_count(op.slot) == 0
            {
                mgr.invalidate(clv);
            }
        }
    }

    /// Blocks until every target of `rs` is published. Targets this plan
    /// computed itself already are; a hit target still being computed by
    /// an earlier, concurrent plan is pinned (so it cannot be remapped)
    /// and that plan's lock-free execution always publishes it.
    fn sync_targets(&self, rs: &ResidentSet) -> Result<(), EngineError> {
        for &(_, slot) in &rs.targets {
            self.arena.manager().wait_ready(slot)?;
        }
        Ok(())
    }

    /// Releases the pins held by a prepared block.
    pub fn release(&self, mut block: PreparedBlock) {
        block.rs.release(self.arena.manager());
    }

    /// First half of an incremental prepare: plans the schedule and takes
    /// all pins, but executes nothing. Drive the returned block through
    /// [`Self::execute_one`] until it reports completion, then convert it
    /// with [`PendingBlock::into_prepared`].
    ///
    /// This split exists for the asynchronous branch-block prefetch: the
    /// prefetch thread computes one step at a time with no lock held, so
    /// placement workers reading the *current* block interleave freely.
    pub fn plan_prepare(
        &self,
        ctx: &ReferenceContext,
        dirs: &[DirEdgeId],
    ) -> Result<PendingBlock, EngineError> {
        let mut rs = ensure_resident(ctx.tree(), dirs, self.arena.manager(), ctx.register_need())?;
        self.demote_evicted(&mut rs);
        Ok(PendingBlock { rs, next_op: 0 })
    }

    /// Offers the published CLVs a freshly planned schedule evicted to
    /// the demotion tiers. Must run before any of the plan's ops execute:
    /// the victims' bytes sit untouched in their (execution-pinned,
    /// unpublished) slots exactly until the ops overwrite them.
    fn demote_evicted(&self, rs: &mut phylo_amc::ResidentSet) {
        if rs.evicted.is_empty() {
            return;
        }
        let Some(tiers) = self.arena.tiers() else {
            rs.evicted.clear();
            return;
        };
        for (victim, slot) in rs.evicted.drain(..) {
            tiers.offer(victim, self.arena.clv(slot), self.arena.scale(slot));
        }
    }

    /// Executes the next compute step of a pending block. Returns `false`
    /// when every step has run; the completing call also drops the plan's
    /// execution pins and synchronizes the block's targets, making it
    /// ready for [`PendingBlock::into_prepared`].
    pub fn execute_one(
        &self,
        ctx: &ReferenceContext,
        pending: &mut PendingBlock,
    ) -> Result<bool, EngineError> {
        let Some(op) = pending.rs.ops.get(pending.next_op).copied() else {
            pending.rs.release_exec(self.arena.manager());
            self.sync_targets(&pending.rs)?;
            return Ok(false);
        };
        let mut scratch = self.scratch.checkout();
        let run = match &self.sitepar {
            None => exec::execute_op(ctx, &self.arena, &op, &mut scratch),
            Some(pool) => exec::execute_op_par(
                ctx,
                &self.arena,
                &op,
                pool,
                self.compute_threads,
                &mut scratch,
            ),
        };
        self.scratch.checkin(scratch);
        run?;
        pending.next_op += 1;
        if pending.next_op < pending.rs.ops.len() {
            Ok(true)
        } else {
            pending.rs.release_exec(self.arena.manager());
            self.sync_targets(&pending.rs)?;
            Ok(false)
        }
    }

    /// Abandons a pending block whose execution failed or will not
    /// continue: releases its pins and drops its unpublished targets so
    /// the store stays usable for subsequent prepares.
    pub fn abandon(&self, pending: PendingBlock) {
        self.abort_schedule(pending.rs);
    }

    /// The stored side for a directed edge. The CLV variant requires the
    /// edge to be resident — i.e. inside a `prepare`/`release` window that
    /// included it. Lock-free.
    pub fn side(&self, ctx: &ReferenceContext, d: DirEdgeId) -> EdgeSide {
        let node = ctx.tree().src(d);
        if ctx.tree().is_leaf(node) {
            return EdgeSide::Tip(node);
        }
        let slot = self
            .arena
            .manager()
            .lookup(ClvKey(d.0))
            .expect("side() requires the directed edge to be prepared");
        EdgeSide::Resident(slot)
    }

    /// A kernel-ready [`Side`] view of a directed edge `d = x → y`,
    /// propagated across its own branch (transition matrices / tip table
    /// of `d.edge()`). This is the "everything beyond the branch" term of
    /// an edge likelihood. Lock-free: the caller must hold the edge in a
    /// prepared (hence pinned and published) block.
    pub fn kernel_side<'a>(&'a self, ctx: &'a ReferenceContext, d: DirEdgeId) -> Side<'a> {
        match self.side(ctx, d) {
            EdgeSide::Tip(node) => Side::Tip {
                table: ctx.tip_table(d.edge()).expect("pendant edge has a tip table"),
                codes: ctx.tip_codes(node),
            },
            EdgeSide::Resident(slot) => Side::Clv {
                clv: self.arena.clv(slot),
                scale: Some(self.arena.scale(slot)),
                pmatrix: ctx.pmatrix(d.edge()),
            },
        }
    }

    /// Raw CLV and scaler slices of a resident directed edge (unpropagated;
    /// the `u` term of an edge likelihood). Returns `None` for tips.
    pub fn clv_of(&self, ctx: &ReferenceContext, d: DirEdgeId) -> Option<(&[f64], &[u32])> {
        match self.side(ctx, d) {
            EdgeSide::Tip(_) => None,
            EdgeSide::Resident(slot) => Some((self.arena.clv(slot), self.arena.scale(slot))),
        }
    }

    /// Pins the highest-recomputation-cost resident CLVs, keeping
    /// `min_unpinned` slots free for traversals — the paper's cross-block
    /// retention. Returns the pinned slots; pass them to
    /// [`Self::unpin_slots`] when the block advances.
    pub fn pin_high_cost(&self, ctx: &ReferenceContext, min_unpinned: usize) -> Vec<SlotId> {
        let costs = ctx.cost_table();
        phylo_amc::fpa::pin_high_cost_resident(self.arena.manager(), &costs, min_unpinned)
    }

    /// Releases pins taken by [`Self::pin_high_cost`].
    pub fn unpin_slots(&self, slots: &[SlotId]) {
        for &s in slots {
            let _ = self.arena.manager().unpin(s);
        }
    }

    /// Drops every resident, unpinned CLV from the cache. Used as a
    /// fallback when a traversal cannot proceed because too many *cached*
    /// dependencies would need pinning at once: a fresh plan over an empty
    /// cache pins at most the Sethi–Ullman need plus the targets, which the
    /// `⌈log₂ n⌉ + 2` floor covers.
    pub fn flush_cache(&self) {
        let mgr = self.arena.manager();
        // A planning operation: the flush must not race another planner's
        // table surgery. In-flight plans' slots are execution-pinned, so
        // they survive the flush.
        let _plan = mgr.plan_guard();
        let keys: Vec<ClvKey> = mgr
            .resident()
            .into_iter()
            .filter(|&(_, slot)| mgr.pin_count(slot) == 0)
            .map(|(clv, _)| clv)
            .collect();
        for k in keys {
            mgr.invalidate(k);
        }
    }

    /// Direct access to the arena (tests, instrumentation).
    pub fn arena(&self) -> &SlotArena {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::generate;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ctx(n: usize, sites: usize, seed: u64) -> ReferenceContext {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(
                    tree.taxon(phylo_tree::NodeId(i as u32)),
                    AlphabetKind::Dna,
                    &text,
                )
                .unwrap()
            })
            .collect();
        let patterns = compress(&Msa::new(rows).unwrap()).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap()
    }

    #[test]
    fn prepare_and_read() {
        let ctx = random_ctx(12, 30, 1);
        let store = ManagedStore::full(&ctx);
        let e = phylo_tree::EdgeId(3);
        let dirs = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
        let block = store.prepare(&ctx, &dirs).unwrap();
        for d in dirs {
            if !ctx.tree().is_leaf(ctx.tree().src(d)) {
                let (clv, _) = store.clv_of(&ctx, d).unwrap();
                assert!(clv.iter().any(|&v| v > 0.0));
            }
        }
        store.release(block);
    }

    #[test]
    fn min_slots_equals_full_values() {
        let ctx = random_ctx(16, 25, 2);
        let full = ManagedStore::full(&ctx);
        let tight =
            ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::CostBased).unwrap();
        for e in ctx.tree().all_edges() {
            let dirs = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let bf = full.prepare(&ctx, &dirs).unwrap();
            let bt = tight.prepare(&ctx, &dirs).unwrap();
            for d in dirs {
                if ctx.tree().is_leaf(ctx.tree().src(d)) {
                    continue;
                }
                let (a, sa) = full.clv_of(&ctx, d).unwrap();
                let (b, sb) = tight.clv_of(&ctx, d).unwrap();
                assert_eq!(a, b, "CLV mismatch at {d:?}");
                assert_eq!(sa, sb);
            }
            full.release(bf);
            tight.release(bt);
        }
        // Full store never evicts; tight store must have.
        assert_eq!(full.stats().evictions, 0);
        assert!(tight.stats().evictions > 0);
    }

    #[test]
    fn too_few_slots_rejected() {
        let ctx = random_ctx(16, 10, 3);
        let err = ManagedStore::with_slots(&ctx, 2, StrategyKind::CostBased).unwrap_err();
        assert!(matches!(err, EngineError::Amc(phylo_amc::AmcError::TooFewSlots { .. })));
    }

    #[test]
    fn full_store_caches_across_prepares() {
        let ctx = random_ctx(10, 20, 4);
        let store = ManagedStore::full(&ctx);
        let mut total_ops = 0;
        for e in ctx.tree().all_edges() {
            let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
            total_ops += block.ops();
            store.release(block);
        }
        assert_eq!(total_ops, ctx.tree().n_inner_dir_edges());
        // Second sweep: all hits.
        for e in ctx.tree().all_edges() {
            let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
            assert_eq!(block.ops(), 0);
            store.release(block);
        }
    }

    #[test]
    fn sitepar_compute_matches_serial() {
        let ctx = random_ctx(14, 64, 5);
        let serial =
            ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::CostBased).unwrap();
        let mut par =
            ManagedStore::with_slots(&ctx, ctx.min_slots(), StrategyKind::CostBased).unwrap();
        par.set_compute_threads(4);
        for e in ctx.tree().all_edges().take(6) {
            let dirs = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let bs = serial.prepare(&ctx, &dirs).unwrap();
            let bp = par.prepare(&ctx, &dirs).unwrap();
            for d in dirs {
                if ctx.tree().is_leaf(ctx.tree().src(d)) {
                    continue;
                }
                assert_eq!(serial.clv_of(&ctx, d).unwrap().0, par.clv_of(&ctx, d).unwrap().0);
            }
            serial.release(bs);
            par.release(bp);
        }
    }

    #[test]
    fn pin_high_cost_protects_and_releases() {
        let ctx = random_ctx(20, 15, 6);
        let store = ManagedStore::with_slots(&ctx, 12, StrategyKind::CostBased).unwrap();
        let e = phylo_tree::EdgeId(0);
        let block = store.prepare(&ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
        store.release(block);
        let pins = store.pin_high_cost(&ctx, ctx.min_slots());
        assert!(store.arena().manager().n_unpinned() >= ctx.min_slots());
        store.unpin_slots(&pins);
        assert_eq!(store.arena().manager().n_pinned(), 0);
    }

    #[test]
    fn concurrent_prepares_agree_with_serial() {
        let ctx = random_ctx(18, 24, 7);
        let reference = ManagedStore::full(&ctx);
        let shared =
            ManagedStore::with_slots(&ctx, ctx.min_slots() + 4, StrategyKind::CostBased).unwrap();
        let edges: Vec<phylo_tree::EdgeId> = ctx.tree().all_edges().collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let shared = &shared;
                let reference = &reference;
                let ctx = &ctx;
                let edges = &edges;
                scope.spawn(move || {
                    for e in edges.iter().skip(t).step_by(4) {
                        let dirs = [DirEdgeId::new(*e, 0), DirEdgeId::new(*e, 1)];
                        let block = loop {
                            match shared.prepare(ctx, &dirs) {
                                Ok(b) => break b,
                                Err(EngineError::Amc(phylo_amc::AmcError::AllSlotsPinned {
                                    ..
                                })) => std::thread::yield_now(),
                                Err(e) => panic!("unexpected prepare error: {e}"),
                            }
                        };
                        let expected = reference.prepare(ctx, &dirs).unwrap();
                        for d in dirs {
                            if ctx.tree().is_leaf(ctx.tree().src(d)) {
                                continue;
                            }
                            assert_eq!(
                                shared.clv_of(ctx, d).unwrap().0,
                                reference.clv_of(ctx, d).unwrap().0,
                                "CLV mismatch at {d:?}"
                            );
                        }
                        reference.release(expected);
                        shared.release(block);
                    }
                });
            }
        });
        assert_eq!(shared.arena().manager().n_pinned(), 0);
        shared.arena().manager().check_invariants().unwrap();
    }
}
