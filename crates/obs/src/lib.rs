//! Zero-dependency observability primitives for the phyloplace stack.
//!
//! Two halves, both behind the `enabled` feature:
//!
//! * a process-global **metrics registry** of named atomic counters,
//!   gauges, and fixed-bucket (power-of-two nanosecond) latency
//!   histograms, interned once and handed out as `&'static` handles so
//!   hot paths never touch the registry lock;
//! * a lightweight **span tracer** (see [`trace`]) that records
//!   wall-clock phase intervals and exports them as Chrome-trace JSON
//!   loadable in `chrome://tracing` / Perfetto.
//!
//! Without the feature every probe type is a zero-sized no-op and the
//! optimizer deletes the call sites outright; [`Snapshot`] and
//! [`TraceEvent`](trace::TraceEvent) stay available as plain data so
//! downstream types (e.g. `RunReport::metrics`) need no feature gates.
//!
//! The registry is process-global and monotonic by design: per-run
//! figures are obtained by snapshotting before and after and taking
//! [`Snapshot::delta`].

pub mod slottrace;
pub mod trace;

use std::collections::BTreeMap;

/// True when the crate was built with the `enabled` feature, i.e. when
/// probes actually record.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Number of histogram buckets; bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0), the last
/// bucket absorbs everything above (~2^39 ns ≈ 9 minutes).
pub const HIST_BUCKETS: usize = 40;

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn bucket_of(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Live metric handles + registry (feature = "enabled")
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod live {
    use super::{bucket_of, HIST_BUCKETS};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Monotonic event counter.
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        #[inline]
        pub fn inc(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    /// Last-write-wins signed level (queue depths, current chunk, ...).
    #[derive(Debug, Default)]
    pub struct Gauge(AtomicI64);

    impl Gauge {
        #[inline]
        pub fn set(&self, v: i64) {
            self.0.store(v, Ordering::Relaxed);
        }
        #[inline]
        pub fn add(&self, d: i64) {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
        #[inline]
        pub fn get(&self) -> i64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    /// Fixed power-of-two-nanosecond bucket histogram.
    #[derive(Debug)]
    pub struct Histogram {
        buckets: [AtomicU64; HIST_BUCKETS],
        count: AtomicU64,
        sum_ns: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Self {
                buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
            }
        }
    }

    impl Histogram {
        #[inline]
        pub fn record_ns(&self, ns: u64) {
            self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        }

        pub fn snapshot(&self) -> super::HistogramSnapshot {
            let mut buckets = Vec::new();
            for (i, b) in self.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                if n > 0 {
                    buckets.push((i as u8, n));
                }
            }
            super::HistogramSnapshot {
                count: self.count.load(Ordering::Relaxed),
                sum_ns: self.sum_ns.load(Ordering::Relaxed),
                buckets,
            }
        }
    }

    /// Wall-clock timer whose cost vanishes when the feature is off.
    #[derive(Debug)]
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        #[inline]
        pub fn elapsed_ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        /// Records the elapsed time into `hist`.
        #[inline]
        pub fn record(&self, hist: &Histogram) {
            hist.record_ns(self.elapsed_ns());
        }
    }

    #[inline]
    pub fn stopwatch() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    #[derive(Default)]
    struct Registry {
        counters: HashMap<String, &'static Counter>,
        gauges: HashMap<String, &'static Gauge>,
        histograms: HashMap<String, &'static Histogram>,
    }

    fn registry() -> std::sync::MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| Mutex::new(Registry::default()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Interns `name` and returns its counter; the same name always
    /// yields the same handle. Handles are leaked once per name —
    /// metric names are a small static vocabulary.
    pub fn counter(name: &str) -> &'static Counter {
        let mut r = registry();
        if let Some(c) = r.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::default());
        r.counters.insert(name.to_string(), c);
        c
    }

    /// Interns `name` and returns its gauge.
    pub fn gauge(name: &str) -> &'static Gauge {
        let mut r = registry();
        if let Some(g) = r.gauges.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::default());
        r.gauges.insert(name.to_string(), g);
        g
    }

    /// Interns `name` and returns its histogram.
    pub fn histogram(name: &str) -> &'static Histogram {
        let mut r = registry();
        if let Some(h) = r.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::default());
        r.histograms.insert(name.to_string(), h);
        h
    }

    /// Copies the current state of every registered metric.
    pub fn snapshot() -> super::Snapshot {
        let r = registry();
        let mut s = super::Snapshot::default();
        for (name, c) in &r.counters {
            s.counters.insert(name.clone(), c.get());
        }
        for (name, g) in &r.gauges {
            s.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in &r.histograms {
            s.histograms.insert(name.clone(), h.snapshot());
        }
        s
    }
}

#[cfg(feature = "enabled")]
pub use live::{
    counter, gauge, histogram, snapshot, stopwatch, Counter, Gauge, Histogram, Stopwatch,
};

// ---------------------------------------------------------------------------
// No-op handles (feature off): same API, zero size, zero cost
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod noop {
    /// No-op counter (observability disabled at compile time).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        #[inline(always)]
        pub fn inc(&self) {}
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge.
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        #[inline(always)]
        pub fn set(&self, _v: i64) {}
        #[inline(always)]
        pub fn add(&self, _d: i64) {}
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// No-op histogram.
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        #[inline(always)]
        pub fn record_ns(&self, _ns: u64) {}
        pub fn snapshot(&self) -> super::HistogramSnapshot {
            super::HistogramSnapshot::default()
        }
    }

    /// No-op stopwatch: takes no timestamp at all.
    #[derive(Debug)]
    pub struct Stopwatch;

    impl Stopwatch {
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
        #[inline(always)]
        pub fn record(&self, _hist: &Histogram) {}
    }

    #[inline(always)]
    pub fn stopwatch() -> Stopwatch {
        Stopwatch
    }

    static NOOP_COUNTER: Counter = Counter;
    static NOOP_GAUGE: Gauge = Gauge;
    static NOOP_HISTOGRAM: Histogram = Histogram;

    #[inline(always)]
    pub fn counter(_name: &str) -> &'static Counter {
        &NOOP_COUNTER
    }
    #[inline(always)]
    pub fn gauge(_name: &str) -> &'static Gauge {
        &NOOP_GAUGE
    }
    #[inline(always)]
    pub fn histogram(_name: &str) -> &'static Histogram {
        &NOOP_HISTOGRAM
    }
    /// With probes compiled out the registry is always empty.
    pub fn snapshot() -> super::Snapshot {
        super::Snapshot::default()
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter, gauge, histogram, snapshot, stopwatch, Counter, Gauge, Histogram, Stopwatch,
};

// ---------------------------------------------------------------------------
// Snapshot: plain data, always compiled
// ---------------------------------------------------------------------------

/// Frozen copy of one histogram: total count, summed nanoseconds, and
/// the non-empty buckets as `(log2_lower_bound, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Samples recorded here but not in `earlier`.
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut buckets = Vec::new();
        for &(i, n) in &self.buckets {
            let prev = earlier.buckets.iter().find(|&&(j, _)| j == i).map(|&(_, n)| n).unwrap_or(0);
            if n > prev {
                buckets.push((i, n - prev));
            }
        }
        Self {
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            buckets,
        }
    }
}

/// Point-in-time copy of the metrics registry. Sorted maps give the
/// JSON export a deterministic field order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Inserts or overwrites a counter — used to fold per-run values
    /// (e.g. a store's own slot statistics) into an exported snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Inserts or overwrites a gauge — used to fold per-run state (the
    /// selected kernel tier, worker-pool occupancy) into an exported
    /// snapshot.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms are subtracted (the registry is monotonic), gauges
    /// keep their latest value. Metrics absent from `earlier` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.counters {
            let prev = earlier.counters.get(name).copied().unwrap_or(0);
            out.counters.insert(name.clone(), v.saturating_sub(prev));
        }
        out.gauges = self.gauges.clone();
        for (name, h) in &self.histograms {
            let d = match earlier.histograms.get(name) {
                Some(prev) => h.delta(prev),
                None => h.clone(),
            };
            out.histograms.insert(name.clone(), d);
        }
        out
    }

    /// Serializes to a self-describing JSON object (hand-rolled, like
    /// every other exporter in this workspace — no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets =
                h.buckets.iter().map(|(b, n)| format!("[{b}, {n}]")).collect::<Vec<_>>().join(", ");
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count,
                h.sum_ns,
                buckets
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut s = Snapshot::default();
        s.set_counter("slot.misses", 7);
        s.gauges.insert("place.chunk".into(), 3);
        s.histograms.insert(
            "slot.wait_ns".into(),
            HistogramSnapshot { count: 2, sum_ns: 300, buckets: vec![(7, 2)] },
        );
        let json = s.to_json();
        assert!(json.contains("\"slot.misses\": 7"), "{json}");
        assert!(json.contains("\"place.chunk\": 3"), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("[7, 2]"), "{json}");
        // Balanced braces — the exporter is hand-rolled, keep it honest.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut earlier = Snapshot::default();
        earlier.set_counter("c", 5);
        earlier
            .histograms
            .insert("h".into(), HistogramSnapshot { count: 3, sum_ns: 30, buckets: vec![(2, 3)] });
        let mut later = earlier.clone();
        later.set_counter("c", 9);
        later.set_counter("new", 1);
        later.histograms.insert(
            "h".into(),
            HistogramSnapshot { count: 5, sum_ns: 80, buckets: vec![(2, 4), (5, 1)] },
        );
        let d = later.delta(&earlier);
        assert_eq!(d.counter("c"), 4);
        assert_eq!(d.counter("new"), 1);
        let h = &d.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 50);
        assert_eq!(h.buckets, vec![(2, 1), (5, 1)]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registry_interns_and_counts() {
        let a = counter("test.obs.interned");
        let b = counter("test.obs.interned");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        a.inc();
        a.add(2);
        assert_eq!(a.get(), before + 3);
        let snap = snapshot();
        assert!(snap.counter("test.obs.interned") >= 3);

        let h = histogram("test.obs.hist");
        h.record_ns(100);
        let hs = snapshot().histograms["test.obs.hist"].clone();
        assert!(hs.count >= 1);
        assert!(hs.sum_ns >= 100);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_probes_record_nothing() {
        let c = counter("test.obs.noop");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Stopwatch>(), 0);
        let sw = stopwatch();
        sw.record(histogram("test.obs.noop_hist"));
        assert!(snapshot().is_empty());
        assert!(!enabled());
    }
}
