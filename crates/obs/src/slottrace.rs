//! Slot-access trace capture: the ordered event stream of the AMC slot
//! manager, in logical (CLV-denominated) form.
//!
//! The slot manager records one [`SlotEvent`] per state-changing table
//! operation, *inside* the table-lock critical section — so the captured
//! order is the true serialization order of the run, even under
//! concurrent planners. Events name logical CLV keys, never physical
//! slots, which is what lets the offline simulator (`phylo-replay`)
//! replay the same demand stream against *any* policy and *any* slot
//! count: physical placement is derived, not recorded.
//!
//! Like the span tracer ([`crate::trace`]), capture is runtime-armed:
//! the manager holds an `Arc<SlotTrace>` only when a run asked for one
//! (`--slot-trace FILE`), and a disarmed manager pays a single relaxed
//! atomic load per operation. Unlike the tracer, this module carries no
//! feature gate — the recorder is plain data and the differential tests
//! must work in every build.
//!
//! # Text format (version 1)
//!
//! Line-based, writable with a shell and diffable in a terminal:
//!
//! ```text
//! #phylo-slot-trace v1
//! #meta n_clvs=96 n_slots=9 strategy=cost bytes_per_slot=4640
//! #costs 1.0 1.0 2.0 5.0 ...
//! a 17        # Acquire: demand access (hit or miss decided on replay)
//! t 17        # Touch: recency notification of a resident CLV
//! p 17 2      # Pin: 2 pins on the slot holding CLV 17 ("-" = empty slot)
//! u 17        # Unpin one pin ("-" = a failed slot with no occupant)
//! U           # UnpinAll (single-owner teardown)
//! i 17        # Invalidate: resident CLV dropped, slot freed
//! x 17        # Poison: slot teardown after a dead computing thread
//! ```
//!
//! The `(clv, access-kind)` pair is explicit per line; the *pinned set*
//! at any position is implicit — fold `p`/`u`/`U` up to that position.
//! `#costs` embeds the per-CLV recomputation-cost table (printed with
//! Rust's shortest round-trip float formatting), so cost-aware policies
//! replay with bit-identical tie-breaking.

use std::sync::Mutex;

/// Sentinel CLV value for events on slots with no occupant (pins on a
/// freed slot, poison of an already-torn-down slot).
pub const NO_CLV: u32 = u32::MAX;

/// One recorded slot-manager operation. `clv` fields hold raw CLV keys
/// ([`NO_CLV`] when the affected slot had no occupant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotEvent {
    /// A demand access (`acquire` or a successful `pin_if_ready` lease):
    /// the CLV was needed; whether it was a hit is a property of the
    /// policy and slot count, so the replayer decides.
    Acquire { clv: u32 },
    /// A recency notification (`touch`) of a resident CLV.
    Touch { clv: u32 },
    /// `n` pins added to the slot holding `clv`.
    Pin { clv: u32, n: u32 },
    /// One pin removed from the slot holding `clv`.
    Unpin { clv: u32 },
    /// All pins force-cleared (single-owner teardown).
    UnpinAll,
    /// A resident, unpinned CLV dropped from its slot (`invalidate`,
    /// including cache flushes). Not counted as an eviction by the live
    /// manager, and therefore not by the replayer either.
    Invalidate { clv: u32 },
    /// Slot teardown after the computing thread died ([`NO_CLV`] when
    /// the slot held no mapping). Only fault-injection runs produce
    /// these; see `phylo-replay` for the replay caveat.
    Poison { clv: u32 },
}

/// Run-level context captured alongside the event stream — everything
/// the offline simulator needs to reconstruct the live configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMeta {
    /// Logical CLV key space (`n_dir_edges` in the placement engine).
    pub n_clvs: u32,
    /// Physical slot count of the captured run.
    pub n_slots: u32,
    /// Replacement strategy of the captured run (its `Display` name).
    pub strategy: String,
    /// Bytes one slot costs (CLV + scale row), for `--maxmem`
    /// recommendations; 0 when unknown.
    pub bytes_per_slot: u64,
    /// Per-CLV recomputation-cost table (empty when the captured policy
    /// did not need one).
    pub costs: Vec<f64>,
}

/// A parsed (or snapshotted) trace: metadata plus the ordered events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Captured run context.
    pub meta: TraceMeta,
    /// The serialized operation stream, in table-lock order.
    pub events: Vec<SlotEvent>,
}

/// The shared recorder a run arms on its slot manager. Internally
/// synchronized: the manager pushes from whatever thread holds the
/// table lock; the run owner snapshots after the run quiesces.
#[derive(Debug, Default)]
pub struct SlotTrace {
    meta: Mutex<TraceMeta>,
    events: Mutex<Vec<SlotEvent>>,
}

impl SlotTrace {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the run context (the run owner calls this once the slot
    /// count and strategy are known, before traffic starts).
    pub fn set_meta(&self, meta: TraceMeta) {
        *self.meta.lock().unwrap_or_else(|e| e.into_inner()) = meta;
    }

    /// Appends one event (called by the slot manager under its table
    /// lock, which is what makes the order authoritative).
    pub fn push(&self, ev: SlotEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the current contents out as a [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace {
            meta: self.meta.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            events: self.events.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

fn fmt_clv(clv: u32) -> String {
    if clv == NO_CLV {
        "-".to_string()
    } else {
        clv.to_string()
    }
}

fn parse_clv(tok: &str) -> Result<u32, String> {
    if tok == "-" {
        return Ok(NO_CLV);
    }
    tok.parse().map_err(|_| format!("bad CLV key {tok:?}"))
}

impl Trace {
    /// Serializes to the version-1 text format.
    pub fn to_text(&self) -> String {
        let m = &self.meta;
        let mut out = String::from("#phylo-slot-trace v1\n");
        out.push_str(&format!(
            "#meta n_clvs={} n_slots={} strategy={} bytes_per_slot={}\n",
            m.n_clvs, m.n_slots, m.strategy, m.bytes_per_slot
        ));
        if !m.costs.is_empty() {
            out.push_str("#costs");
            for c in &m.costs {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 — cost ties replay bit-exactly.
                out.push_str(&format!(" {c:?}"));
            }
            out.push('\n');
        }
        for ev in &self.events {
            match *ev {
                SlotEvent::Acquire { clv } => out.push_str(&format!("a {}\n", fmt_clv(clv))),
                SlotEvent::Touch { clv } => out.push_str(&format!("t {}\n", fmt_clv(clv))),
                SlotEvent::Pin { clv, n } => out.push_str(&format!("p {} {n}\n", fmt_clv(clv))),
                SlotEvent::Unpin { clv } => out.push_str(&format!("u {}\n", fmt_clv(clv))),
                SlotEvent::UnpinAll => out.push_str("U\n"),
                SlotEvent::Invalidate { clv } => out.push_str(&format!("i {}\n", fmt_clv(clv))),
                SlotEvent::Poison { clv } => out.push_str(&format!("x {}\n", fmt_clv(clv))),
            }
        }
        out
    }

    /// Parses the version-1 text format. Unknown `#`-comment lines are
    /// skipped (forward compatibility); unknown event lines are errors.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == "#phylo-slot-trace v1" => {}
            other => {
                return Err(format!(
                    "not a phylo-slot-trace v1 file (first line: {:?})",
                    other.map(|(_, l)| l).unwrap_or("")
                ))
            }
        }
        let mut trace = Trace::default();
        for (ln, line) in lines {
            let line = line.trim();
            let err = |why: String| format!("line {}: {why}", ln + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(meta) = line.strip_prefix("#meta ") {
                for kv in meta.split_whitespace() {
                    let (k, v) = kv.split_once('=').ok_or_else(|| err(format!("bad {kv:?}")))?;
                    match k {
                        "n_clvs" => {
                            trace.meta.n_clvs = v.parse().map_err(|_| err(format!("{kv:?}")))?
                        }
                        "n_slots" => {
                            trace.meta.n_slots = v.parse().map_err(|_| err(format!("{kv:?}")))?
                        }
                        "strategy" => trace.meta.strategy = v.to_string(),
                        "bytes_per_slot" => {
                            trace.meta.bytes_per_slot =
                                v.parse().map_err(|_| err(format!("{kv:?}")))?
                        }
                        _ => {} // unknown meta keys are fine
                    }
                }
                continue;
            }
            if let Some(costs) = line.strip_prefix("#costs") {
                trace.meta.costs = costs
                    .split_whitespace()
                    .map(|t| t.parse().map_err(|_| err(format!("bad cost {t:?}"))))
                    .collect::<Result<_, _>>()?;
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let kind = tok.next().unwrap_or("");
            let mut clv = || -> Result<u32, String> {
                parse_clv(tok.next().ok_or_else(|| err(format!("{kind:?} needs a CLV")))?)
                    .map_err(err)
            };
            let ev = match kind {
                "a" => SlotEvent::Acquire { clv: clv()? },
                "t" => SlotEvent::Touch { clv: clv()? },
                "p" => {
                    let c = clv()?;
                    let n = tok
                        .next()
                        .ok_or_else(|| err("p needs a pin count".into()))?
                        .parse()
                        .map_err(|_| err("bad pin count".into()))?;
                    SlotEvent::Pin { clv: c, n }
                }
                "u" => SlotEvent::Unpin { clv: clv()? },
                "U" => SlotEvent::UnpinAll,
                "i" => SlotEvent::Invalidate { clv: clv()? },
                "x" => SlotEvent::Poison { clv: clv()? },
                other => return Err(err(format!("unknown event kind {other:?}"))),
            };
            trace.events.push(ev);
        }
        Ok(trace)
    }

    /// Number of distinct CLVs that appear in demand ([`SlotEvent::Acquire`])
    /// events — the working set; with at least this many slots every
    /// policy incurs only compulsory misses.
    pub fn distinct_acquired(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for ev in &self.events {
            if let SlotEvent::Acquire { clv } = *ev {
                if clv != NO_CLV {
                    seen.insert(clv);
                }
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            meta: TraceMeta {
                n_clvs: 12,
                n_slots: 4,
                strategy: "cost-lru".into(),
                bytes_per_slot: 4640,
                costs: vec![1.0, 2.5, 0.1, 7.0],
            },
            events: vec![
                SlotEvent::Acquire { clv: 3 },
                SlotEvent::Pin { clv: 3, n: 2 },
                SlotEvent::Touch { clv: 3 },
                SlotEvent::Unpin { clv: 3 },
                SlotEvent::Unpin { clv: NO_CLV },
                SlotEvent::UnpinAll,
                SlotEvent::Invalidate { clv: 3 },
                SlotEvent::Poison { clv: NO_CLV },
            ],
        }
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let parsed = Trace::parse(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn recorder_snapshot_round_trip() {
        let rec = SlotTrace::new();
        let t = sample();
        rec.set_meta(t.meta.clone());
        for &ev in &t.events {
            rec.push(ev);
        }
        assert_eq!(rec.len(), t.events.len());
        assert_eq!(rec.snapshot(), t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Trace::parse("not a trace\n").is_err());
        assert!(Trace::parse("#phylo-slot-trace v1\nz 3\n").is_err());
        assert!(Trace::parse("#phylo-slot-trace v1\na\n").is_err());
        assert!(Trace::parse("#phylo-slot-trace v1\np 3\n").is_err());
        // Unknown comments and meta keys pass through.
        let t =
            Trace::parse("#phylo-slot-trace v1\n# a comment\n#meta n_clvs=3 future=9\n").unwrap();
        assert_eq!(t.meta.n_clvs, 3);
    }

    #[test]
    fn distinct_acquired_counts_demand_only() {
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![
                SlotEvent::Acquire { clv: 1 },
                SlotEvent::Acquire { clv: 1 },
                SlotEvent::Acquire { clv: 4 },
                SlotEvent::Touch { clv: 9 },
            ],
        };
        assert_eq!(t.distinct_acquired(), 2);
    }

    #[test]
    fn costs_round_trip_bit_exactly() {
        let costs = vec![0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.6789];
        let t = Trace {
            meta: TraceMeta { costs: costs.clone(), ..Default::default() },
            events: vec![],
        };
        let parsed = Trace::parse(&t.to_text()).unwrap();
        for (a, b) in parsed.meta.costs.iter().zip(&costs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
