//! Span tracing with a Chrome-trace exporter.
//!
//! Dapper-style wall-clock spans: a [`span`] guard records one interval
//! per scope, tagged with a category and the recording thread. Nothing
//! is captured until [`start`] flips the collector on, so instrumented
//! code pays one relaxed atomic load per span when tracing is idle —
//! and literally nothing when the `enabled` feature is off.
//!
//! [`chrome_json`] renders captured events in the Trace Event Format
//! (`{"traceEvents": [...]}`, `ph: "X"` complete events, microsecond
//! timestamps) understood by `chrome://tracing` and Perfetto.

/// One completed span. Timestamps are nanoseconds since the tracing
/// epoch (the first [`start`] call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: String,
    /// Category, e.g. `"phase"`, `"chunk"`, `"prefetch"`.
    pub cat: &'static str,
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Stable per-thread id (assigned in first-span order, 1-based).
    pub tid: u64,
}

/// Renders events as Chrome Trace Event Format JSON. Always available;
/// with tracing compiled out it renders an empty (still loadable)
/// trace.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{}}}",
            crate::json_escape(&e.name),
            crate::json_escape(e.cat),
            e.ts_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            e.tid
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(feature = "enabled")]
mod imp {
    use super::TraceEvent;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    fn ns_since_epoch(t: Instant) -> u64 {
        u64::try_from(t.duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Starts capturing spans (idempotent). The first call fixes the
    /// trace epoch.
    pub fn start() {
        epoch();
        ACTIVE.store(true, Ordering::Release);
    }

    /// Stops capturing. Already-captured events stay buffered until
    /// [`drain`].
    pub fn stop() {
        ACTIVE.store(false, Ordering::Release);
    }

    #[inline]
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }

    /// Takes all buffered events, ordered by start time.
    pub fn drain() -> Vec<TraceEvent> {
        let mut ev = std::mem::take(&mut *EVENTS.lock().unwrap_or_else(|e| e.into_inner()));
        ev.sort_by_key(|e| e.ts_ns);
        ev
    }

    /// RAII span: records `[creation, drop)` under `name` when tracing
    /// is active, otherwise does nothing.
    #[must_use = "a span records its interval when dropped"]
    #[derive(Debug)]
    pub struct Span(Option<SpanInner>);

    #[derive(Debug)]
    struct SpanInner {
        name: String,
        cat: &'static str,
        start: Instant,
    }

    pub fn span(name: &str, cat: &'static str) -> Span {
        if !is_active() {
            return Span(None);
        }
        Span(Some(SpanInner { name: name.to_string(), cat, start: Instant::now() }))
    }

    /// Records a zero-duration marker event (heartbeats, transitions).
    pub fn mark(name: &str, cat: &'static str) {
        if !is_active() {
            return;
        }
        let now = Instant::now();
        push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_ns: ns_since_epoch(now),
            dur_ns: 0,
            tid: TID.with(|t| *t),
        });
    }

    fn push(e: TraceEvent) {
        EVENTS.lock().unwrap_or_else(|p| p.into_inner()).push(e);
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(inner) = self.0.take() {
                let dur = inner.start.elapsed();
                push(TraceEvent {
                    name: inner.name,
                    cat: inner.cat,
                    ts_ns: ns_since_epoch(inner.start),
                    dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
                    tid: TID.with(|t| *t),
                });
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::TraceEvent;

    #[inline(always)]
    pub fn start() {}
    #[inline(always)]
    pub fn stop() {}
    #[inline(always)]
    pub fn is_active() -> bool {
        false
    }
    pub fn drain() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// No-op span (tracing compiled out).
    #[must_use = "a span records its interval when dropped"]
    #[derive(Debug)]
    pub struct Span(());

    #[inline(always)]
    pub fn span(_name: &str, _cat: &'static str) -> Span {
        Span(())
    }
    #[inline(always)]
    pub fn mark(_name: &str, _cat: &'static str) {}
}

pub use imp::{drain, is_active, mark, span, start, stop, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_loadable_shape() {
        let events = vec![
            TraceEvent {
                name: "lookup.build".into(),
                cat: "phase",
                ts_ns: 1500,
                dur_ns: 2500,
                tid: 1,
            },
            TraceEvent {
                name: "chunk \"0\"".into(),
                cat: "chunk",
                ts_ns: 5000,
                dur_ns: 100,
                tid: 2,
            },
        ];
        let json = chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.500"), "{json}");
        // Quotes in names must be escaped for the JSON to load.
        assert!(json.contains("chunk \\\"0\\\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
    }

    #[test]
    fn empty_trace_still_valid() {
        assert_eq!(chrome_json(&[]), "{\"traceEvents\":[\n\n]}\n");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_record_only_while_active() {
        // Global collector: drain whatever other tests left behind.
        let _ = drain();
        {
            let _s = span("ignored", "test");
        }
        start();
        {
            let _s = span("seen", "test");
            mark("beat", "test");
        }
        stop();
        {
            let _s = span("ignored-too", "test");
        }
        let events = drain();
        assert!(events.iter().any(|e| e.name == "seen" && e.cat == "test"));
        assert!(events.iter().any(|e| e.name == "beat" && e.dur_ns == 0));
        assert!(!events.iter().any(|e| e.name.starts_with("ignored")));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_tracing_is_inert() {
        start();
        assert!(!is_active());
        let _s = span("x", "y");
        mark("x", "y");
        assert!(drain().is_empty());
    }
}
