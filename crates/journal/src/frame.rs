//! Binary chunk-frame format.
//!
//! Each completed query chunk is serialized into one self-delimiting,
//! self-checking frame:
//!
//! ```text
//! magic "PJF1"  u32 LE
//! payload_len   u32 LE      (bytes that follow the 12-byte header)
//! crc32         u32 LE      (IEEE CRC-32 of the payload)
//! payload:
//!   chunk_index        u32
//!   prefetch_disabled  u64   \
//!   block_clamped      u64   |  per-chunk degradation / work stats,
//!   flush_retries      u64   |  merged into the resumed RunReport
//!   n_prescored        u64   |
//!   n_thorough         u64   /
//!   n_queries          u32
//!   per query:
//!     name_len u32, name bytes (UTF-8)
//!     n_placements u32
//!     per placement:
//!       edge u32, log_likelihood u64 (f64 bits),
//!       pendant_length u64 (f64 bits), distal_length u64 (f64 bits)
//! ```
//!
//! Everything is little-endian. Floats travel as exact IEEE-754 bit
//! patterns so a resumed run reproduces the uninterrupted run's jplace
//! byte for byte. The CRC plus the length prefix let replay distinguish
//! "valid prefix + torn tail" (expected after a crash mid-append; the
//! tail is discarded) from a complete frame.

/// Frame header magic, `b"PJF1"` read as a little-endian u32.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"PJF1");

/// Fixed header size: magic + payload_len + crc32.
pub const FRAME_HEADER_LEN: usize = 12;

/// Frames larger than this are treated as corrupt rather than allocated
/// (a torn length field could otherwise request gigabytes).
pub const MAX_PAYLOAD_LEN: u32 = 256 * 1024 * 1024;

/// Per-chunk statistics carried alongside the placements so a resumed
/// run's report equals the uninterrupted run's report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChunkStats {
    pub prefetch_disabled: u64,
    pub block_clamped: u64,
    pub flush_retries: u64,
    pub n_prescored: u64,
    pub n_thorough: u64,
}

/// One placement of one query on one branch, with floats as computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementRecord {
    pub edge: u32,
    pub log_likelihood: f64,
    pub pendant_length: f64,
    pub distal_length: f64,
}

/// All retained placements for one query, already in final sorted order
/// (the orchestrator journals post-finalized chunk slices).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRecord {
    pub name: String,
    pub placements: Vec<PlacementRecord>,
}

/// One journal entry: a completed chunk of queries.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkFrame {
    pub chunk_index: u32,
    pub stats: ChunkStats,
    pub queries: Vec<QueryRecord>,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a payload during decode; every read is bounds-checked so
/// arbitrary (torn, bit-flipped) bytes can never panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

impl ChunkFrame {
    /// Serializes the payload (everything after the 12-byte header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.queries.len() * 64);
        put_u32(&mut buf, self.chunk_index);
        put_u64(&mut buf, self.stats.prefetch_disabled);
        put_u64(&mut buf, self.stats.block_clamped);
        put_u64(&mut buf, self.stats.flush_retries);
        put_u64(&mut buf, self.stats.n_prescored);
        put_u64(&mut buf, self.stats.n_thorough);
        put_u32(&mut buf, self.queries.len() as u32);
        for q in &self.queries {
            put_u32(&mut buf, q.name.len() as u32);
            buf.extend_from_slice(q.name.as_bytes());
            put_u32(&mut buf, q.placements.len() as u32);
            for p in &q.placements {
                put_u32(&mut buf, p.edge);
                put_u64(&mut buf, p.log_likelihood.to_bits());
                put_u64(&mut buf, p.pendant_length.to_bits());
                put_u64(&mut buf, p.distal_length.to_bits());
            }
        }
        buf
    }

    /// Serializes the full frame: header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        put_u32(&mut buf, FRAME_MAGIC);
        put_u32(&mut buf, payload.len() as u32);
        put_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        buf
    }

    /// Decodes a payload whose CRC already matched. Returns `None` on any
    /// structural inconsistency (short buffer, bad UTF-8, trailing bytes);
    /// the caller treats that exactly like a CRC failure.
    pub fn decode_payload(payload: &[u8]) -> Option<ChunkFrame> {
        let mut r = Reader { buf: payload, pos: 0 };
        let chunk_index = r.u32()?;
        let stats = ChunkStats {
            prefetch_disabled: r.u64()?,
            block_clamped: r.u64()?,
            flush_retries: r.u64()?,
            n_prescored: r.u64()?,
            n_thorough: r.u64()?,
        };
        let n_queries = r.u32()? as usize;
        // Cheap sanity bound: each query needs at least 8 bytes.
        if n_queries > payload.len() / 8 + 1 {
            return None;
        }
        let mut queries = Vec::with_capacity(n_queries);
        for _ in 0..n_queries {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_owned();
            let n_placements = r.u32()? as usize;
            if n_placements > payload.len() / 28 + 1 {
                return None;
            }
            let mut placements = Vec::with_capacity(n_placements);
            for _ in 0..n_placements {
                placements.push(PlacementRecord {
                    edge: r.u32()?,
                    log_likelihood: f64::from_bits(r.u64()?),
                    pendant_length: f64::from_bits(r.u64()?),
                    distal_length: f64::from_bits(r.u64()?),
                });
            }
            queries.push(QueryRecord { name, placements });
        }
        if r.pos != payload.len() {
            return None;
        }
        Some(ChunkFrame { chunk_index, stats, queries })
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320), table
/// built once on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> ChunkFrame {
        ChunkFrame {
            chunk_index: 3,
            stats: ChunkStats {
                prefetch_disabled: 1,
                block_clamped: 2,
                flush_retries: 3,
                n_prescored: 40,
                n_thorough: 5,
            },
            queries: vec![
                QueryRecord {
                    name: "q one".into(),
                    placements: vec![
                        PlacementRecord {
                            edge: 7,
                            log_likelihood: -1234.5678,
                            pendant_length: 0.03125,
                            distal_length: 0.5,
                        },
                        PlacementRecord {
                            edge: 0,
                            log_likelihood: -1240.0,
                            pendant_length: 1e-9,
                            distal_length: 0.0,
                        },
                    ],
                },
                QueryRecord { name: String::new(), placements: vec![] },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_is_exact() {
        let f = sample_frame();
        let bytes = f.encode();
        assert_eq!(&bytes[0..4], b"PJF1");
        let payload = &bytes[FRAME_HEADER_LEN..];
        let decoded = ChunkFrame::decode_payload(payload).expect("valid payload decodes");
        assert_eq!(decoded, f);
        // Float bit patterns must survive exactly.
        assert_eq!(
            decoded.queries[0].placements[0].log_likelihood.to_bits(),
            f.queries[0].placements[0].log_likelihood.to_bits()
        );
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_bytes() {
        let payload = sample_frame().encode_payload();
        for cut in 0..payload.len() {
            assert!(ChunkFrame::decode_payload(&payload[..cut]).is_none(), "cut at {cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert!(ChunkFrame::decode_payload(&extended).is_none());
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let payload = sample_frame().encode_payload();
        let good = crc32(&payload);
        for byte in [0usize, payload.len() / 2, payload.len() - 1] {
            let mut bad = payload.clone();
            bad[byte] ^= 0x40;
            assert_ne!(crc32(&bad), good, "flip at byte {byte} went undetected");
        }
    }
}
