//! Run manifest: fingerprints the inputs and the chunking-relevant
//! configuration of a placement run.
//!
//! `--resume` is only sound when the resumed run would enumerate the
//! same queries in the same chunks and score them under the same model;
//! otherwise replayed frames would be silently attributed to the wrong
//! queries. The manifest records content hashes of the tree / reference
//! MSA / query inputs plus the effective (post-memory-plan) chunk size
//! and the scoring knobs, and [`Manifest::check_matches`] refuses any
//! divergence with a typed, field-naming error instead of producing a
//! corrupt merge.
//!
//! The file is hand-rolled JSON (this workspace takes no external
//! dependencies): one `"key": value` pair per line, hashes as 16-hex-char
//! strings so 64-bit values never pass through f64.

use crate::JournalError;

/// Manifest format version; bump on any layout change so an old journal
/// directory fails with a clear error instead of a field-parse error.
pub const MANIFEST_FORMAT: u32 = 1;

/// FNV-1a 64-bit content hash — stable, dependency-free, and plenty for
/// "did the user pass the same file" (this is a consistency check, not a
/// security boundary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that must match for frame replay to be valid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    pub format: u32,
    /// FNV-1a of the Newick tree text.
    pub tree_hash: u64,
    /// FNV-1a of the reference MSA text.
    pub ref_msa_hash: u64,
    /// FNV-1a of the query FASTA text.
    pub query_hash: u64,
    /// Alphabet name (e.g. `dna`).
    pub alphabet: String,
    /// Gamma shape as exact f64 bits, or `None` when rate heterogeneity
    /// is off — bit-compares, so 1.0 vs 1.0000000001 is a mismatch.
    pub gamma_alpha_bits: Option<u64>,
    /// Effective chunk size after the memory plan clamped it; chunk
    /// boundaries (and therefore frame indices) depend on it.
    pub chunk_size: usize,
    /// Total query count the chunking iterated over.
    pub n_queries: usize,
    /// Thorough-phase candidate fraction, exact f64 bits.
    pub thorough_fraction_bits: u64,
    /// Minimum thorough candidates per query.
    pub thorough_min: usize,
    /// Branch-length-optimization iterations in the thorough phase.
    pub blo_iterations: usize,
}

fn mismatch(field: &'static str, expected: impl ToString, found: impl ToString) -> JournalError {
    JournalError::ManifestMismatch {
        field,
        expected: expected.to_string(),
        found: found.to_string(),
    }
}

impl Manifest {
    /// Checks that `self` (the current run) is compatible with `on_disk`
    /// (the checkpointed run being resumed). The error names the first
    /// diverging field; `expected` is the on-disk value.
    pub fn check_matches(&self, on_disk: &Manifest) -> Result<(), JournalError> {
        if self.format != on_disk.format {
            return Err(mismatch("format", on_disk.format, self.format));
        }
        if self.tree_hash != on_disk.tree_hash {
            return Err(mismatch(
                "tree_hash",
                format!("{:016x}", on_disk.tree_hash),
                format!("{:016x}", self.tree_hash),
            ));
        }
        if self.ref_msa_hash != on_disk.ref_msa_hash {
            return Err(mismatch(
                "ref_msa_hash",
                format!("{:016x}", on_disk.ref_msa_hash),
                format!("{:016x}", self.ref_msa_hash),
            ));
        }
        if self.query_hash != on_disk.query_hash {
            return Err(mismatch(
                "query_hash",
                format!("{:016x}", on_disk.query_hash),
                format!("{:016x}", self.query_hash),
            ));
        }
        if self.alphabet != on_disk.alphabet {
            return Err(mismatch("alphabet", &on_disk.alphabet, &self.alphabet));
        }
        if self.gamma_alpha_bits != on_disk.gamma_alpha_bits {
            let show = |v: &Option<u64>| match v {
                Some(bits) => format!("{}", f64::from_bits(*bits)),
                None => "none".into(),
            };
            return Err(mismatch(
                "gamma_alpha",
                show(&on_disk.gamma_alpha_bits),
                show(&self.gamma_alpha_bits),
            ));
        }
        if self.chunk_size != on_disk.chunk_size {
            return Err(mismatch("chunk_size", on_disk.chunk_size, self.chunk_size));
        }
        if self.n_queries != on_disk.n_queries {
            return Err(mismatch("n_queries", on_disk.n_queries, self.n_queries));
        }
        if self.thorough_fraction_bits != on_disk.thorough_fraction_bits {
            return Err(mismatch(
                "thorough_fraction",
                f64::from_bits(on_disk.thorough_fraction_bits),
                f64::from_bits(self.thorough_fraction_bits),
            ));
        }
        if self.thorough_min != on_disk.thorough_min {
            return Err(mismatch("thorough_min", on_disk.thorough_min, self.thorough_min));
        }
        if self.blo_iterations != on_disk.blo_iterations {
            return Err(mismatch("blo_iterations", on_disk.blo_iterations, self.blo_iterations));
        }
        Ok(())
    }

    /// Serializes to the manifest JSON text (trailing newline included).
    pub fn to_json(&self) -> String {
        let gamma = match self.gamma_alpha_bits {
            Some(bits) => format!("\"{bits:016x}\""),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\n",
                "  \"format\": {},\n",
                "  \"tree_hash\": \"{:016x}\",\n",
                "  \"ref_msa_hash\": \"{:016x}\",\n",
                "  \"query_hash\": \"{:016x}\",\n",
                "  \"alphabet\": \"{}\",\n",
                "  \"gamma_alpha_bits\": {},\n",
                "  \"chunk_size\": {},\n",
                "  \"n_queries\": {},\n",
                "  \"thorough_fraction_bits\": \"{:016x}\",\n",
                "  \"thorough_min\": {},\n",
                "  \"blo_iterations\": {}\n",
                "}}\n",
            ),
            self.format,
            self.tree_hash,
            self.ref_msa_hash,
            self.query_hash,
            self.alphabet,
            gamma,
            self.chunk_size,
            self.n_queries,
            self.thorough_fraction_bits,
            self.thorough_min,
            self.blo_iterations,
        )
    }

    /// Parses the manifest JSON produced by [`Manifest::to_json`]. The
    /// error string names the missing or malformed field.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let raw = |key: &str| -> Result<&str, String> {
            let needle = format!("\"{key}\":");
            let start =
                text.find(&needle).ok_or_else(|| format!("missing field `{key}`"))? + needle.len();
            let rest = &text[start..];
            let end = rest.find(['\n', ','].as_ref()).unwrap_or(rest.len());
            Ok(rest[..end].trim())
        };
        let uint = |key: &str| -> Result<u64, String> {
            raw(key)?.parse::<u64>().map_err(|_| format!("malformed field `{key}`"))
        };
        let hex = |key: &str| -> Result<u64, String> {
            let v = raw(key)?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("malformed field `{key}`"))?;
            u64::from_str_radix(v, 16).map_err(|_| format!("malformed field `{key}`"))
        };
        let string = |key: &str| -> Result<String, String> {
            let v = raw(key)?;
            v.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_owned)
                .ok_or_else(|| format!("malformed field `{key}`"))
        };
        let format = uint("format")? as u32;
        if format != MANIFEST_FORMAT {
            return Err(format!(
                "unsupported manifest format {format} (this build reads {MANIFEST_FORMAT})"
            ));
        }
        let gamma_alpha_bits = match raw("gamma_alpha_bits")? {
            "null" => None,
            _ => Some(hex("gamma_alpha_bits")?),
        };
        Ok(Manifest {
            format,
            tree_hash: hex("tree_hash")?,
            ref_msa_hash: hex("ref_msa_hash")?,
            query_hash: hex("query_hash")?,
            alphabet: string("alphabet")?,
            gamma_alpha_bits,
            chunk_size: uint("chunk_size")? as usize,
            n_queries: uint("n_queries")? as usize,
            thorough_fraction_bits: hex("thorough_fraction_bits")?,
            thorough_min: uint("thorough_min")? as usize,
            blo_iterations: uint("blo_iterations")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format: MANIFEST_FORMAT,
            tree_hash: fnv1a64(b"(a,b);"),
            ref_msa_hash: fnv1a64(b">a\nACGT\n"),
            query_hash: fnv1a64(b">q\nACG-\n"),
            alphabet: "dna".into(),
            gamma_alpha_bits: Some(1.0f64.to_bits()),
            chunk_size: 7,
            n_queries: 23,
            thorough_fraction_bits: 0.1f64.to_bits(),
            thorough_min: 2,
            blo_iterations: 8,
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_json()).unwrap(), m);
        let no_gamma = Manifest { gamma_alpha_bits: None, ..sample() };
        assert_eq!(Manifest::parse(&no_gamma.to_json()).unwrap(), no_gamma);
    }

    #[test]
    fn check_matches_names_the_diverging_field() {
        let m = sample();
        assert!(m.check_matches(&m).is_ok());
        let other = Manifest { query_hash: 1, ..sample() };
        match other.check_matches(&m) {
            Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "query_hash"),
            r => panic!("expected query_hash mismatch, got {r:?}"),
        }
        let other = Manifest { chunk_size: 8, ..sample() };
        match other.check_matches(&m) {
            Err(JournalError::ManifestMismatch { field, expected, found }) => {
                assert_eq!(field, "chunk_size");
                assert_eq!(expected, "7");
                assert_eq!(found, "8");
            }
            r => panic!("expected chunk_size mismatch, got {r:?}"),
        }
    }

    #[test]
    fn parse_reports_missing_and_malformed_fields() {
        assert!(Manifest::parse("{}").unwrap_err().contains("format"));
        let broken = sample().to_json().replace("\"alphabet\": \"dna\"", "\"alphabet\": 3");
        assert!(Manifest::parse(&broken).unwrap_err().contains("alphabet"));
        let future = sample().to_json().replace("\"format\": 1", "\"format\": 99");
        assert!(Manifest::parse(&future).unwrap_err().contains("unsupported"));
    }
}
