//! Crash-safe run lifecycle for phylogenetic placement.
//!
//! A placement run over millions of queries can take hours; a crash,
//! `kill`, or wall-clock deadline should not discard finished work. This
//! crate provides the durable half of that story:
//!
//! * [`frame`] — a self-delimiting, CRC32-checked binary frame per
//!   completed query chunk (placements + per-chunk stats, floats as
//!   exact bit patterns);
//! * [`manifest`] — a run fingerprint (input content hashes + effective
//!   chunking/scoring config) that makes `--resume` refuse mismatched
//!   inputs with a typed error instead of merging garbage;
//! * [`RunJournal`] — the session object: `create` starts a fresh
//!   journal directory, `resume` validates the manifest, replays the
//!   valid frame prefix (a torn or corrupt tail — the expected residue
//!   of a crash mid-append — is detected and truncated away, not
//!   fatal), and positions the writer to continue; `append` makes one
//!   chunk durable (`write` + `fsync`) before the orchestrator advances.
//!
//! Durability contract: when `append` returns `Ok`, the frame survives
//! process death (the bytes and the file length are synced). The
//! manifest is written first, via the same atomic-rename +
//! directory-fsync dance the jplace writer uses, so a journal directory
//! is either absent, empty-but-described, or a valid prefix of the run.
//!
//! Fault sites (armed under the `faults` feature):
//! `journal::torn_write` appends half a frame and fails without syncing
//! — the torn-tail path; `journal::crash_after_chunk` fails *after* the
//! frame is durable — the "process died between chunks" path, which a
//! resume must complete from exactly.

pub mod frame;
pub mod manifest;
pub mod shard;

pub use frame::{ChunkFrame, ChunkStats, PlacementRecord, QueryRecord};
pub use manifest::{fnv1a64, Manifest, MANIFEST_FORMAT};
pub use shard::{ShardSetManifest, SHARD_MANIFEST_FILE, SHARD_MANIFEST_FORMAT};

use frame::{crc32, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_PAYLOAD_LEN};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Manifest file name inside a journal directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Chunk-journal file name inside a journal directory.
pub const JOURNAL_FILE: &str = "chunks.journal";

/// Errors from journal creation, appends, and resume validation.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation failed; `context` says which.
    Io { context: String, source: std::io::Error },
    /// `--resume` pointed at a directory with no manifest (not a
    /// checkpoint directory, or the run died before writing it).
    ManifestMissing { path: PathBuf },
    /// The manifest file exists but cannot be parsed.
    ManifestParse { path: PathBuf, detail: String },
    /// The resumed run's inputs or configuration differ from the
    /// checkpointed run's; `expected` is the on-disk (checkpointed) value.
    ManifestMismatch { field: &'static str, expected: String, found: String },
    /// A replayed frame disagrees with the current run's chunking (e.g.
    /// a query name mismatch detected by the orchestrator).
    FrameMismatch { chunk: u32, detail: String },
    /// The `journal::crash_after_chunk` fault site fired: the frame is
    /// durable but the process "died". Tests treat this like a kill.
    InjectedCrash,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { context, source } => write!(f, "journal I/O: {context}: {source}"),
            JournalError::ManifestMissing { path } => {
                write!(f, "not a checkpoint directory: no manifest at {}", path.display())
            }
            JournalError::ManifestParse { path, detail } => {
                write!(f, "unreadable manifest {}: {detail}", path.display())
            }
            JournalError::ManifestMismatch { field, expected, found } => write!(
                f,
                "cannot resume: {field} differs from the checkpointed run \
                 (checkpoint has {expected}, this run has {found})"
            ),
            JournalError::FrameMismatch { chunk, detail } => {
                write!(f, "journal frame {chunk} does not match this run: {detail}")
            }
            JournalError::InjectedCrash => write!(f, "injected crash after durable append"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> JournalError {
    let context = context.into();
    move |source| JournalError::Io { context, source }
}

/// Fsyncs a directory so a just-created/renamed entry inside it is
/// durable. Best-effort on platforms where directories cannot be opened.
fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    match File::open(dir) {
        Ok(d) => d.sync_all().map_err(io_err(format!("fsync dir {}", dir.display()))),
        Err(_) => Ok(()),
    }
}

/// Writes `contents` to `path` crash-atomically *and durably*: the bytes
/// go to `<path>.tmp` first, are fsynced, renamed into place, and the
/// parent directory is fsynced so the rename itself survives power loss.
/// A crash or failure mid-write leaves either the previous file or none
/// — never a truncated one — and the temp file is cleaned up on error.
///
/// This is the single write idiom for every user-visible artifact of a
/// run (jplace output, slot traces, shard manifests, merged results);
/// callers that need a deterministic failure-injection point use
/// [`write_text_atomic_probed`].
pub fn write_text_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    write_text_atomic_impl(path, contents, None)
}

/// As [`write_text_atomic`], probing the named fault site between the
/// data fsync and the rename — the precise point where a crash would
/// leave a durable temp file but an unchanged destination.
pub fn write_text_atomic_probed(
    path: &Path,
    contents: &str,
    fault_site: &str,
) -> std::io::Result<()> {
    write_text_atomic_impl(path, contents, Some(fault_site))
}

fn write_text_atomic_impl(
    path: &Path,
    contents: &str,
    fault_site: Option<&str>,
) -> std::io::Result<()> {
    let tmp = path.with_extension(match path.extension() {
        Some(e) => format!("{}.tmp", e.to_string_lossy()),
        None => "tmp".to_string(),
    });
    let write = || -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        // Data must be durable before the rename publishes the name;
        // otherwise a crash could leave the final path pointing at a
        // zero-length inode.
        f.sync_all()?;
        drop(f);
        if fault_site.is_some_and(phylo_faults::fire) {
            return Err(std::io::Error::other(format!(
                "injected {} write failure",
                path.extension().map(|e| e.to_string_lossy().into_owned()).unwrap_or_default()
            )));
        }
        std::fs::rename(&tmp, path)?;
        // The rename lives in the directory; fsync it (best-effort on
        // platforms where directories cannot be opened for sync).
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                d.sync_all()?;
            }
        }
        Ok(())
    };
    let r = write();
    if r.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    r
}

/// Result of scanning a journal file: the decodable frame prefix, the
/// byte offset where it ends, and whether a torn/corrupt tail followed.
#[derive(Debug)]
pub struct Replay {
    pub frames: Vec<ChunkFrame>,
    /// End offset of each frame in `frames` (monotonic); the last entry
    /// — or 0 — is the length a continuing writer must truncate to.
    pub frame_ends: Vec<u64>,
    /// True when bytes past the valid prefix were discarded.
    pub torn_tail: bool,
}

impl Replay {
    fn empty() -> Self {
        Replay { frames: Vec::new(), frame_ends: Vec::new(), torn_tail: false }
    }

    /// Byte length of the valid prefix.
    pub fn valid_len(&self) -> u64 {
        self.frame_ends.last().copied().unwrap_or(0)
    }
}

/// Scans `path` and decodes the longest valid frame prefix. A missing
/// file is an empty replay; a torn tail stops the scan (recorded in
/// `torn_tail`) but is not an error — it is the expected shape of a
/// journal whose writer died mid-append.
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::empty()),
        Err(e) => return Err(io_err(format!("open {}", path.display()))(e)),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf).map_err(io_err(format!("read {}", path.display())))?;
    let mut out = Replay::empty();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_HEADER_LEN {
            out.torn_tail = true;
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[8..12].try_into().unwrap());
        if magic != FRAME_MAGIC || payload_len > MAX_PAYLOAD_LEN {
            out.torn_tail = true;
            break;
        }
        let end = FRAME_HEADER_LEN + payload_len as usize;
        if rest.len() < end {
            out.torn_tail = true;
            break;
        }
        let payload = &rest[FRAME_HEADER_LEN..end];
        if crc32(payload) != crc {
            out.torn_tail = true;
            break;
        }
        match ChunkFrame::decode_payload(payload) {
            Some(f) => out.frames.push(f),
            None => {
                out.torn_tail = true;
                break;
            }
        }
        pos += end;
        out.frame_ends.push(pos as u64);
    }
    if out.torn_tail {
        phylo_obs::counter("journal.torn_tails").inc();
    }
    phylo_obs::counter("journal.replayed_frames").add(out.frames.len() as u64);
    Ok(out)
}

/// Append-only frame writer with per-append durability.
struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    fn create(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err(format!("create {}", path.display())))?;
        Ok(JournalWriter { file, path: path.to_owned() })
    }

    /// Opens an existing journal for continuation: truncates away any
    /// torn tail past `valid_len` and positions at the end.
    fn continue_at(path: &Path, valid_len: u64) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err(format!("open {}", path.display())))?;
        let ctx = || format!("truncate {} to valid prefix", path.display());
        file.set_len(valid_len).map_err(io_err(ctx()))?;
        file.sync_all().map_err(io_err(ctx()))?;
        let mut w = JournalWriter { file, path: path.to_owned() };
        w.file.seek(SeekFrom::Start(valid_len)).map_err(io_err(ctx()))?;
        Ok(w)
    }

    fn append(&mut self, frame: &ChunkFrame) -> Result<(), JournalError> {
        let bytes = frame.encode();
        let ctx = || format!("append chunk {} to {}", frame.chunk_index, self.path.display());
        if phylo_faults::fire("journal::torn_write") {
            // Simulates a crash mid-append: half the frame reaches the
            // file, nothing is synced, and the process "dies". Replay
            // must shed exactly this tail.
            let half = &bytes[..bytes.len() / 2];
            self.file.write_all(half).map_err(io_err(ctx()))?;
            let _ = self.file.flush();
            return Err(JournalError::Io {
                context: ctx(),
                source: std::io::Error::other("injected torn write"),
            });
        }
        self.file.write_all(&bytes).map_err(io_err(ctx()))?;
        // sync_all (not sync_data): the file grows on every append, so
        // the size metadata is part of the durability contract.
        self.file.sync_all().map_err(io_err(ctx()))?;
        phylo_obs::counter("journal.appends").inc();
        phylo_obs::counter("journal.append_bytes").add(bytes.len() as u64);
        if phylo_faults::fire("journal::crash_after_chunk") {
            return Err(JournalError::InjectedCrash);
        }
        Ok(())
    }
}

/// One run's checkpoint session: a journal directory with a validated
/// manifest, the frames replayed from a previous attempt (if any), and
/// a durable writer for the chunks still to come.
pub struct RunJournal {
    dir: PathBuf,
    writer: JournalWriter,
    replayed: Vec<ChunkFrame>,
    torn_tail: bool,
}

impl RunJournal {
    /// Starts a fresh checkpoint directory: creates `dir`, writes the
    /// manifest atomically (tmp + fsync + rename + dir fsync), and
    /// truncates any stale journal so old frames can never leak into
    /// this run.
    pub fn create(dir: &Path, manifest: &Manifest) -> Result<RunJournal, JournalError> {
        std::fs::create_dir_all(dir).map_err(io_err(format!("create dir {}", dir.display())))?;
        let man_path = dir.join(MANIFEST_FILE);
        // The one atomic-writer implementation in the workspace: tmp +
        // file fsync + rename + parent-dir fsync. Keeping the manifest
        // on the same helper as every other run artifact (jplace, slot
        // traces, shards.json) means an audit of crash-atomicity has a
        // single code path to read.
        write_text_atomic(&man_path, &manifest.to_json())
            .map_err(io_err(format!("write manifest {}", man_path.display())))?;
        let writer = JournalWriter::create(&dir.join(JOURNAL_FILE))?;
        sync_dir(dir)?;
        Ok(RunJournal { dir: dir.to_owned(), writer, replayed: Vec::new(), torn_tail: false })
    }

    /// Resumes from an existing checkpoint directory. Validates the
    /// on-disk manifest against `expected` (the current run), replays
    /// the valid frame prefix — frames must be the contiguous sequence
    /// `0, 1, 2, …`; anything after a gap or reorder is discarded with
    /// the tail — truncates the journal to that prefix, and positions
    /// the writer to append the next chunk.
    pub fn resume(dir: &Path, expected: &Manifest) -> Result<RunJournal, JournalError> {
        let man_path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&man_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(JournalError::ManifestMissing { path: man_path })
            }
            Err(e) => return Err(io_err(format!("read {}", man_path.display()))(e)),
        };
        let on_disk = Manifest::parse(&text)
            .map_err(|detail| JournalError::ManifestParse { path: man_path, detail })?;
        expected.check_matches(&on_disk)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let scan = replay(&journal_path)?;
        // Keep only the contiguous 0..k prefix; a non-sequential index
        // means foreign or stale frames (defensive — normal appends are
        // sequential), which we shed exactly like a torn tail.
        let mut keep = 0usize;
        while keep < scan.frames.len() && scan.frames[keep].chunk_index == keep as u32 {
            keep += 1;
        }
        let torn_tail = scan.torn_tail || keep < scan.frames.len();
        let valid_len = if keep == 0 { 0 } else { scan.frame_ends[keep - 1] };
        let mut frames = scan.frames;
        frames.truncate(keep);
        let writer = JournalWriter::continue_at(&journal_path, valid_len)?;
        Ok(RunJournal { dir: dir.to_owned(), writer, replayed: frames, torn_tail })
    }

    /// The checkpoint directory this session writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Frames recovered by [`RunJournal::resume`] (empty after `create`).
    pub fn replayed(&self) -> &[ChunkFrame] {
        &self.replayed
    }

    /// Takes ownership of the replayed frames (the orchestrator consumes
    /// them once, at the start of the chunk loop).
    pub fn take_replayed(&mut self) -> Vec<ChunkFrame> {
        std::mem::take(&mut self.replayed)
    }

    /// True when resume discarded a torn/corrupt tail or out-of-sequence
    /// frames (informational; the run continues from the valid prefix).
    pub fn had_torn_tail(&self) -> bool {
        self.torn_tail
    }

    /// Durably appends one completed chunk. On `Ok`, the frame survives
    /// process death.
    pub fn append(&mut self, frame: &ChunkFrame) -> Result<(), JournalError> {
        self.writer.append(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("phylo-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn manifest() -> Manifest {
        Manifest {
            format: MANIFEST_FORMAT,
            tree_hash: 1,
            ref_msa_hash: 2,
            query_hash: 3,
            alphabet: "dna".into(),
            gamma_alpha_bits: None,
            chunk_size: 4,
            n_queries: 10,
            thorough_fraction_bits: 0.25f64.to_bits(),
            thorough_min: 1,
            blo_iterations: 4,
        }
    }

    fn frame(i: u32) -> ChunkFrame {
        ChunkFrame {
            chunk_index: i,
            stats: ChunkStats { n_prescored: 4, n_thorough: 1, ..Default::default() },
            queries: vec![QueryRecord {
                name: format!("q{i}"),
                placements: vec![PlacementRecord {
                    edge: i,
                    log_likelihood: -10.5 - i as f64,
                    pendant_length: 0.01,
                    distal_length: 0.5,
                }],
            }],
        }
    }

    #[test]
    fn create_publishes_manifest_atomically_with_no_tmp_residue() {
        let dir = tmpdir("atomic-manifest");
        let j = RunJournal::create(&dir, &manifest()).unwrap();
        drop(j);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n == MANIFEST_FILE), "manifest missing: {names:?}");
        assert!(!names.iter().any(|n| n.ends_with(".tmp")), "tmp residue left: {names:?}");
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        Manifest::parse(&text).expect("published manifest parses");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_append_resume_roundtrip() {
        let dir = tmpdir("roundtrip");
        let m = manifest();
        let mut j = RunJournal::create(&dir, &m).unwrap();
        for i in 0..3 {
            j.append(&frame(i)).unwrap();
        }
        drop(j);
        let r = RunJournal::resume(&dir, &m).unwrap();
        assert_eq!(r.replayed().len(), 3);
        assert!(!r.had_torn_tail());
        for (i, f) in r.replayed().iter().enumerate() {
            assert_eq!(*f, frame(i as u32));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_sheds_torn_tail_and_continues() {
        let dir = tmpdir("torn");
        let m = manifest();
        let mut j = RunJournal::create(&dir, &m).unwrap();
        j.append(&frame(0)).unwrap();
        j.append(&frame(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append: raw half-frame at the tail.
        let path = dir.join(JOURNAL_FILE);
        let bytes = frame(2).encode();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(f);
        let mut r = RunJournal::resume(&dir, &m).unwrap();
        assert_eq!(r.replayed().len(), 2);
        assert!(r.had_torn_tail());
        // The writer truncated the tail; appending chunk 2 now yields a
        // clean 3-frame journal.
        r.append(&frame(2)).unwrap();
        drop(r);
        let r2 = RunJournal::resume(&dir, &m).unwrap();
        assert_eq!(r2.replayed().len(), 3);
        assert!(!r2.had_torn_tail());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_sheds_corrupt_middle_as_tail() {
        let dir = tmpdir("corrupt");
        let m = manifest();
        let mut j = RunJournal::create(&dir, &m).unwrap();
        for i in 0..3 {
            j.append(&frame(i)).unwrap();
        }
        drop(j);
        // Flip a payload byte inside frame 1: frames 1 and 2 are gone
        // (replay cannot trust anything past the first bad CRC).
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let f0_len = frame(0).encode().len();
        bytes[f0_len + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = RunJournal::resume(&dir, &m).unwrap();
        assert_eq!(r.replayed().len(), 1);
        assert!(r.had_torn_tail());
        assert_eq!(r.replayed()[0], frame(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_missing_and_mismatched_manifest() {
        let dir = tmpdir("mismatch");
        let m = manifest();
        match RunJournal::resume(&dir.join("nope"), &m) {
            Err(JournalError::ManifestMissing { .. }) => {}
            r => panic!("expected ManifestMissing, got {:?}", r.err()),
        }
        RunJournal::create(&dir, &m).unwrap();
        let other = Manifest { query_hash: 999, ..manifest() };
        match RunJournal::resume(&dir, &other) {
            Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "query_hash"),
            r => panic!("expected ManifestMismatch, got {:?}", r.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_truncates_stale_journal() {
        let dir = tmpdir("stale");
        let m = manifest();
        let mut j = RunJournal::create(&dir, &m).unwrap();
        j.append(&frame(0)).unwrap();
        drop(j);
        // A fresh run over the same directory must not inherit frames.
        let j2 = RunJournal::create(&dir, &m).unwrap();
        assert!(j2.replayed().is_empty());
        drop(j2);
        let r = RunJournal::resume(&dir, &m).unwrap();
        assert!(r.replayed().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
