//! Shard-set manifest: fingerprints a *sharded* run's inputs and split
//! geometry.
//!
//! The shard coordinator splits the query stream into contiguous ranges
//! and gives each worker its own journal directory. Re-running the
//! coordinator over the same work directory (the coordinator-crash
//! recovery path) is only sound when the split is identical — same
//! inputs, same shard count, same per-shard query ranges — otherwise a
//! worker would `--resume` a journal that belongs to different queries.
//! The per-worker [`crate::Manifest`] already refuses *that* mismatch at
//! the shard level; this manifest refuses it one level up, before any
//! worker is launched, with an error that names the diverging field.

use crate::{JournalError, Manifest};

/// Shard-set manifest format version; bump on any layout change.
pub const SHARD_MANIFEST_FORMAT: u32 = 1;

/// File name of the shard-set manifest inside a coordinator work
/// directory.
pub const SHARD_MANIFEST_FILE: &str = "shards.json";

/// Everything that must match for a coordinator work directory to be
/// reused: the input fingerprints and the exact split geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSetManifest {
    pub format: u32,
    /// FNV-1a of the Newick tree text.
    pub tree_hash: u64,
    /// FNV-1a of the reference MSA text.
    pub ref_msa_hash: u64,
    /// FNV-1a of the *unsplit* query FASTA text.
    pub query_hash: u64,
    /// Queries per shard, in shard order (contiguous split; the sum is
    /// the total query count).
    pub shard_sizes: Vec<usize>,
}

fn mismatch(field: &'static str, expected: impl ToString, found: impl ToString) -> JournalError {
    JournalError::ManifestMismatch {
        field,
        expected: expected.to_string(),
        found: found.to_string(),
    }
}

impl ShardSetManifest {
    /// Number of shards in the split.
    pub fn n_shards(&self) -> usize {
        self.shard_sizes.len()
    }

    /// Checks that `self` (the current coordinator invocation) matches
    /// `on_disk` (the work directory's recorded split). The error names
    /// the first diverging field; `expected` is the on-disk value.
    pub fn check_matches(&self, on_disk: &ShardSetManifest) -> Result<(), JournalError> {
        if self.format != on_disk.format {
            return Err(mismatch("format", on_disk.format, self.format));
        }
        if self.tree_hash != on_disk.tree_hash {
            return Err(mismatch(
                "tree_hash",
                format!("{:016x}", on_disk.tree_hash),
                format!("{:016x}", self.tree_hash),
            ));
        }
        if self.ref_msa_hash != on_disk.ref_msa_hash {
            return Err(mismatch(
                "ref_msa_hash",
                format!("{:016x}", on_disk.ref_msa_hash),
                format!("{:016x}", self.ref_msa_hash),
            ));
        }
        if self.query_hash != on_disk.query_hash {
            return Err(mismatch(
                "query_hash",
                format!("{:016x}", on_disk.query_hash),
                format!("{:016x}", self.query_hash),
            ));
        }
        if self.shard_sizes != on_disk.shard_sizes {
            return Err(mismatch(
                "shard_sizes",
                format!("{:?}", on_disk.shard_sizes),
                format!("{:?}", self.shard_sizes),
            ));
        }
        Ok(())
    }

    /// Serializes to the manifest JSON text (trailing newline included).
    pub fn to_json(&self) -> String {
        let sizes = self.shard_sizes.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
        format!(
            concat!(
                "{{\n",
                "  \"format\": {},\n",
                "  \"tree_hash\": \"{:016x}\",\n",
                "  \"ref_msa_hash\": \"{:016x}\",\n",
                "  \"query_hash\": \"{:016x}\",\n",
                "  \"shard_sizes\": [{}]\n",
                "}}\n",
            ),
            self.format, self.tree_hash, self.ref_msa_hash, self.query_hash, sizes,
        )
    }

    /// Parses the JSON produced by [`ShardSetManifest::to_json`]. The
    /// error string names the missing or malformed field.
    pub fn parse(text: &str) -> Result<ShardSetManifest, String> {
        let raw = |key: &str| -> Result<&str, String> {
            let needle = format!("\"{key}\":");
            let start =
                text.find(&needle).ok_or_else(|| format!("missing field `{key}`"))? + needle.len();
            let rest = &text[start..];
            let end = rest.find('\n').unwrap_or(rest.len());
            Ok(rest[..end].trim().trim_end_matches(','))
        };
        let hex = |key: &str| -> Result<u64, String> {
            let v = raw(key)?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("malformed field `{key}`"))?;
            u64::from_str_radix(v, 16).map_err(|_| format!("malformed field `{key}`"))
        };
        let format =
            raw("format")?.parse::<u32>().map_err(|_| "malformed field `format`".to_string())?;
        if format != SHARD_MANIFEST_FORMAT {
            return Err(format!(
                "unsupported shard manifest format {format} (this build reads \
                 {SHARD_MANIFEST_FORMAT})"
            ));
        }
        let sizes_raw = raw("shard_sizes")?;
        let inner = sizes_raw
            .strip_prefix('[')
            .and_then(|v| v.strip_suffix(']'))
            .ok_or_else(|| "malformed field `shard_sizes`".to_string())?;
        let shard_sizes = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|_| "malformed field `shard_sizes`".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        if shard_sizes.is_empty() {
            return Err("malformed field `shard_sizes`: empty split".to_string());
        }
        Ok(ShardSetManifest {
            format,
            tree_hash: hex("tree_hash")?,
            ref_msa_hash: hex("ref_msa_hash")?,
            query_hash: hex("query_hash")?,
            shard_sizes,
        })
    }

    /// The per-worker run manifest for shard `shard`: same input tree and
    /// reference fingerprints, but the query hash and count are the
    /// shard's own. `shard_query_text` is the shard's FASTA slice exactly
    /// as the worker will read it.
    pub fn worker_manifest(
        &self,
        shard: usize,
        shard_query_text: &str,
        template: &Manifest,
    ) -> Manifest {
        Manifest {
            query_hash: crate::fnv1a64(shard_query_text.as_bytes()),
            n_queries: self.shard_sizes[shard],
            ..template.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardSetManifest {
        ShardSetManifest {
            format: SHARD_MANIFEST_FORMAT,
            tree_hash: 0xdead_beef,
            ref_msa_hash: 0xfeed_f00d,
            query_hash: 0x0123_4567_89ab_cdef,
            shard_sizes: vec![9, 9, 8],
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let m = sample();
        assert_eq!(ShardSetManifest::parse(&m.to_json()).unwrap(), m);
        let single = ShardSetManifest { shard_sizes: vec![26], ..sample() };
        assert_eq!(ShardSetManifest::parse(&single.to_json()).unwrap(), single);
    }

    #[test]
    fn check_matches_names_the_field() {
        let m = sample();
        assert!(m.check_matches(&m).is_ok());
        let other = ShardSetManifest { shard_sizes: vec![13, 13], ..sample() };
        match other.check_matches(&m) {
            Err(JournalError::ManifestMismatch { field, expected, found }) => {
                assert_eq!(field, "shard_sizes");
                assert_eq!(expected, "[9, 9, 8]");
                assert_eq!(found, "[13, 13]");
            }
            r => panic!("expected shard_sizes mismatch, got {r:?}"),
        }
        let other = ShardSetManifest { query_hash: 1, ..sample() };
        match other.check_matches(&m) {
            Err(JournalError::ManifestMismatch { field, .. }) => assert_eq!(field, "query_hash"),
            r => panic!("expected query_hash mismatch, got {r:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ShardSetManifest::parse("{}").unwrap_err().contains("format"));
        let future = sample().to_json().replace("\"format\": 1", "\"format\": 9");
        assert!(ShardSetManifest::parse(&future).unwrap_err().contains("unsupported"));
        let broken = sample().to_json().replace("[9, 9, 8]", "[9, x]");
        assert!(ShardSetManifest::parse(&broken).unwrap_err().contains("shard_sizes"));
        let empty = sample().to_json().replace("[9, 9, 8]", "[]");
        assert!(ShardSetManifest::parse(&empty).unwrap_err().contains("empty split"));
    }
}
