//! Newick serialization for unrooted binary trees.
//!
//! The parser accepts both the rooted-binary convention (root of degree 2,
//! which is suppressed into a single branch) and the unrooted convention
//! (trifurcation at the outermost level). Every other inner node must have
//! exactly two children, so the resulting [`Tree`] is strictly binary.
//!
//! The writer emits the unrooted convention, rooting the output at the inner
//! node adjacent to leaf 0, so `parse(write(t))` reproduces `t` up to node
//! relabeling.

use crate::error::TreeError;
use crate::ids::NodeId;
use crate::tree::{BuildNode, Tree, TreeBuilder};

/// Default branch length assigned when the Newick text omits one.
pub const DEFAULT_BRANCH_LENGTH: f64 = 0.0;

/// Deepest parenthesis nesting the parser accepts. The parser itself
/// keeps an explicit stack, but the builder walk and the AST teardown
/// after it recurse once per level, so without a bound a hostile input
/// of a few kilobytes of `(` would overflow the stack — an abort, not a
/// catchable error. The bound keeps those walks within a 2 MiB thread
/// stack (the test-runner default) with margin. Only a pure-caterpillar
/// topology nests anywhere near it; random and inferred trees stay
/// within a few hundred levels even at 10⁵ taxa.
pub const MAX_NESTING_DEPTH: usize = 2_000;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// A parsed subtree: either a leaf name or a list of children.
enum Ast {
    Leaf(String),
    Inner(Vec<(Ast, f64)>),
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> TreeError {
        TreeError::Parse { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), TreeError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_name(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'(' | b')' | b',' | b':' | b';') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn parse_length(&mut self) -> Result<f64, TreeError> {
        self.skip_ws();
        if self.peek() != Some(b':') {
            return Ok(DEFAULT_BRANCH_LENGTH);
        }
        self.pos += 1;
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // Errors anchor at the first byte of the length token, not at
        // `self.pos` (the token's end): a malformed exponent like `1e+`
        // should point the user at the `1`, the start of the offending
        // number.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
            TreeError::Parse { pos: start, msg: "invalid utf-8 in branch length".into() }
        })?;
        text.parse::<f64>().map_err(|_| TreeError::Parse {
            pos: start,
            msg: format!("invalid branch length {text:?}"),
        })
    }

    /// Parses a subtree and the branch length that follows it.
    ///
    /// Iterative with an explicit stack of partially-built inner nodes:
    /// parse depth is bounded only by [`MAX_NESTING_DEPTH`], never by the
    /// thread's stack, so hostile nesting yields a typed error rather
    /// than a stack-overflow abort.
    fn parse_subtree(&mut self) -> Result<(Ast, f64), TreeError> {
        let mut stack: Vec<Vec<(Ast, f64)>> = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                if stack.len() >= MAX_NESTING_DEPTH {
                    return Err(self.err(format!("nesting deeper than {MAX_NESTING_DEPTH} levels")));
                }
                self.pos += 1;
                stack.push(Vec::new());
                continue;
            }
            let name = self.parse_name();
            if name.is_empty() {
                return Err(self.err("expected taxon name"));
            }
            let len = self.parse_length()?;
            let mut node = (Ast::Leaf(name), len);
            // Attach the completed subtree upward, closing as many groups
            // as the input closes here.
            loop {
                let Some(top) = stack.last_mut() else {
                    return Ok(node);
                };
                top.push(node);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        break; // next sibling
                    }
                    Some(b')') => {
                        self.pos += 1;
                        let children = stack.pop().expect("non-empty: last_mut succeeded");
                        // Optional internal label, ignored.
                        let _ = self.parse_name();
                        let len = self.parse_length()?;
                        node = (Ast::Inner(children), len);
                    }
                    _ => return Err(self.err("expected ',' or ')'")),
                }
            }
        }
    }
}

fn emit(ast: Ast, parent: BuildNode, length: f64, b: &mut TreeBuilder) -> Result<(), TreeError> {
    match ast {
        Ast::Leaf(name) => {
            let leaf = b.add_leaf(name);
            b.connect(parent, leaf, length);
        }
        Ast::Inner(children) => {
            if children.len() != 2 {
                return Err(TreeError::Malformed(format!(
                    "non-root inner node has {} children; strictly binary trees require 2",
                    children.len()
                )));
            }
            let node = b.add_inner();
            b.connect(parent, node, length);
            for (child, len) in children {
                emit(child, node, len, b)?;
            }
        }
    }
    Ok(())
}

/// Parses a Newick string into an unrooted binary [`Tree`].
///
/// Degree-2 roots are suppressed (their two incident branch lengths are
/// summed); a trifurcating root becomes a regular inner node.
pub fn parse(text: &str) -> Result<Tree, TreeError> {
    let mut p = Parser::new(text);
    let (root, _len) = p.parse_subtree()?;
    p.expect(b';')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after ';'"));
    }

    let children = match root {
        Ast::Inner(c) => c,
        Ast::Leaf(_) => return Err(TreeError::TooFewLeaves(1)),
    };

    let mut b = TreeBuilder::new();
    match children.len() {
        2 => {
            // Rooted convention: suppress the root. The two root children
            // are joined by a single branch whose length is the sum.
            let mut it = children.into_iter();
            let (left, llen) = it.next().unwrap();
            let (right, rlen) = it.next().unwrap();
            let joined = llen + rlen;
            match (left, right) {
                (Ast::Inner(lc), right_ast) => {
                    if lc.len() != 2 {
                        return Err(TreeError::Malformed(
                            "non-binary inner node under root".into(),
                        ));
                    }
                    let node = b.add_inner();
                    for (child, len) in lc {
                        emit(child, node, len, &mut b)?;
                    }
                    emit(right_ast, node, joined, &mut b)?;
                }
                (left_ast @ Ast::Leaf(_), Ast::Inner(rc)) => {
                    if rc.len() != 2 {
                        return Err(TreeError::Malformed(
                            "non-binary inner node under root".into(),
                        ));
                    }
                    let node = b.add_inner();
                    for (child, len) in rc {
                        emit(child, node, len, &mut b)?;
                    }
                    emit(left_ast, node, joined, &mut b)?;
                }
                (Ast::Leaf(_), Ast::Leaf(_)) => {
                    return Err(TreeError::TooFewLeaves(2));
                }
            }
        }
        3 => {
            let node = b.add_inner();
            for (child, len) in children {
                emit(child, node, len, &mut b)?;
            }
        }
        k => {
            return Err(TreeError::Malformed(format!(
                "root has {k} children; expected 2 (rooted) or 3 (unrooted)"
            )))
        }
    }
    b.build()
}

fn write_subtree(tree: &Tree, node: NodeId, from: NodeId, out: &mut String) {
    if tree.is_leaf(node) {
        out.push_str(tree.taxon(node));
        return;
    }
    out.push('(');
    let mut first = true;
    for &(w, e) in tree.neighbors(node) {
        if w == from {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        write_subtree(tree, w, node, out);
        out.push(':');
        push_len(out, tree.edge_length(e));
    }
    out.push(')');
}

fn push_len(out: &mut String, len: f64) {
    // Shortest representation that round-trips f64.
    let mut buf = format!("{len}");
    if !buf.contains('.') && !buf.contains('e') && !buf.contains("inf") && !buf.contains("NaN") {
        buf.push_str(".0");
    }
    out.push_str(&buf);
}

/// Serializes the tree in the unrooted Newick convention (trifurcation at
/// the inner node adjacent to leaf 0).
pub fn write(tree: &Tree) -> String {
    let leaf0 = NodeId(0);
    let (anchor, e0) = tree.neighbors(leaf0)[0];
    let mut out = String::with_capacity(tree.n_leaves() * 12);
    out.push('(');
    out.push_str(tree.taxon(leaf0));
    out.push(':');
    push_len(&mut out, tree.edge_length(e0));
    for &(w, e) in tree.neighbors(anchor) {
        if w == leaf0 {
            continue;
        }
        out.push(',');
        write_subtree(tree, w, anchor, &mut out);
        out.push(':');
        push_len(&mut out, tree.edge_length(e));
    }
    out.push_str(");");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_unrooted_trifurcation() {
        let t = parse("(A:0.1,B:0.2,C:0.3);").unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert!((t.total_length() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn parse_rooted_binary_suppresses_root() {
        let t = parse("((A:0.1,B:0.2):0.05,(C:0.3,D:0.4):0.15);").unwrap();
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.n_edges(), 5);
        // The suppressed root merges 0.05 + 0.15 into one internal branch.
        assert!((t.total_length() - (0.1 + 0.2 + 0.3 + 0.4 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn parse_rooted_with_leaf_child() {
        let t = parse("(A:0.5,(B:0.1,C:0.2):0.3);").unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert!((t.total_length() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn missing_lengths_default_to_zero() {
        let t = parse("(A,B,C);").unwrap();
        assert_eq!(t.total_length(), 0.0);
    }

    #[test]
    fn inner_labels_ignored() {
        let t = parse("((A:0.1,B:0.2)inner1:0.05,(C:0.3,D:0.4)inner2:0.15)root;").unwrap();
        assert_eq!(t.n_leaves(), 4);
    }

    #[test]
    fn scientific_notation_lengths() {
        let t = parse("(A:1e-3,B:2.5E-2,C:1.0);").unwrap();
        assert!((t.total_length() - (0.001 + 0.025 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let src = "((A:0.1,B:0.2):0.05,(C:0.3,(D:0.25,E:0.35):0.1):0.15);";
        let t1 = parse(src).unwrap();
        let text = write(&t1);
        let t2 = parse(&text).unwrap();
        assert_eq!(t1.n_leaves(), t2.n_leaves());
        assert!((t1.total_length() - t2.total_length()).abs() < 1e-9);
        let mut names1: Vec<_> = t1.taxa().to_vec();
        let mut names2: Vec<_> = t2.taxa().to_vec();
        names1.sort();
        names2.sort();
        assert_eq!(names1, names2);
    }

    #[test]
    fn reject_garbage() {
        assert!(parse("").is_err());
        assert!(parse("(A,B,C)").is_err()); // missing ';'
        assert!(parse("(A,B,C); extra").is_err());
        assert!(parse("A;").is_err()); // single leaf
        assert!(parse("(A,B);").is_err()); // two leaves
        assert!(parse("(A,B,C,D);").is_err()); // root quadrifurcation
        assert!(parse("((A,B,X):0.1,C,D);").is_err()); // inner trifurcation
        assert!(parse("(A:x,B:0.2,C:0.3);").is_err()); // bad length
    }

    #[test]
    fn reject_negative_length() {
        assert!(parse("(A:-0.5,B:0.2,C:0.3);").is_err());
    }

    #[test]
    fn truncated_input_is_a_typed_error_with_position() {
        // Cut off mid-subtree: the error must be Parse (not a panic) and
        // point at the byte where input ran out.
        let text = "((A:0.1,B:0.2";
        match parse(text) {
            Err(TreeError::Parse { pos, .. }) => assert_eq!(pos, text.len()),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn unbalanced_parens_rejected() {
        assert!(matches!(parse("((A,B,C);"), Err(TreeError::Parse { .. })));
        assert!(matches!(parse("(A,B,C));"), Err(TreeError::Parse { .. })));
        assert!(matches!(parse("(A,(B,C);"), Err(TreeError::Parse { .. })));
    }

    #[test]
    fn hostile_nesting_depth_is_an_error_not_a_stack_overflow() {
        let mut text = String::new();
        for _ in 0..(MAX_NESTING_DEPTH + 10) {
            text.push('(');
        }
        text.push('A');
        match parse(&text) {
            Err(TreeError::Parse { msg, .. }) => assert!(msg.contains("nesting"), "{msg}"),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_exponents_rejected_at_token_start() {
        // An exponent marker with no digits is not a number; the error
        // position must be the first byte of the length token.
        for (text, at) in [
            ("(A:1e,B:0.2,C:0.3);", 3),
            ("(A:1e+,B:0.2,C:0.3);", 3),
            ("(A:0.1,B:1E-,C:0.3);", 9),
            ("(A:0.1,B:0.2,C:.e5);", 15),
        ] {
            match parse(text) {
                Err(TreeError::Parse { pos, msg }) => {
                    assert_eq!(pos, at, "{text}");
                    assert!(msg.contains("branch length"), "{msg}");
                }
                other => panic!("expected Parse error for {text}, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected_at_its_offset() {
        // Whitespace after ';' is fine; anything else errors at the first
        // offending byte.
        assert!(parse("(A:0.1,B:0.2,C:0.3);  \n").is_ok());
        let text = "(A:0.1,B:0.2,C:0.3); x";
        match parse(text) {
            Err(TreeError::Parse { pos, msg }) => {
                assert_eq!(pos, 21);
                assert!(msg.contains("trailing"), "{msg}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        // A second tree on the same line is trailing garbage too.
        assert!(parse("(A,B,C);(D,E,F);").is_err());
    }

    #[test]
    fn missing_taxon_name_reports_position() {
        match parse("(A:0.1,,C:0.3);") {
            Err(TreeError::Parse { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }
}
