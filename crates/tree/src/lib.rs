//! Phylogenetic tree data structures for likelihood computation and placement.
//!
//! The central type is [`Tree`], an **unrooted, strictly binary** phylogeny:
//! every leaf has degree 1 and every inner node degree 3. This is the shape
//! required by likelihood-based placement: a reference tree with `n` leaves
//! has `n − 2` inner nodes and `2n − 3` branches, and a placement engine
//! evaluates query insertions into each of those branches.
//!
//! Likelihood bookkeeping is organized around **directed edges**
//! ([`DirEdgeId`]): the conditional likelihood vector (CLV) associated with
//! the directed edge `x → y` summarizes the subtree that contains `x` when
//! the branch `{x, y}` is removed. An inner node has three outgoing directed
//! edges, which is exactly the `3·(n − 2)` CLV layout used by EPA-NG; leaves
//! contribute cheap tip vectors instead.
//!
//! The crate also provides:
//!
//! * Newick parsing and writing ([`newick`]),
//! * post-order traversal planning for single CLVs and whole-tree sweeps
//!   ([`traversal`]),
//! * random tree generators (Yule, uniform, caterpillar, fully balanced)
//!   used by the synthetic datasets ([`generate`]),
//! * per-directed-edge subtree statistics (leaf counts as recomputation-cost
//!   proxies, Sethi–Ullman register need for the `⌈log₂ n⌉ + 2` minimum-slot
//!   bound) in [`stats`].

pub mod error;
pub mod generate;
pub mod ids;
pub mod newick;
pub mod stats;
pub mod traversal;
pub mod tree;

pub use error::TreeError;
pub use ids::{DirEdgeId, EdgeId, NodeId};
pub use tree::{Edge, Tree, TreeBuilder};
