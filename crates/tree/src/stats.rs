//! Per-directed-edge subtree statistics.
//!
//! Two quantities drive the Active Management of CLVs:
//!
//! * **subtree leaf counts** — the number of leaves a CLV summarizes, used
//!   by the default replacement strategy as an approximation of the cost of
//!   recomputing that CLV from scratch (the paper, §IV);
//! * **register need** — the Sethi–Ullman number of a CLV: how many slots
//!   must be live at once to compute it with *no* caching, when the
//!   traversal always descends into the more demanding child first. Its
//!   maximum over the tree certifies that the paper's `⌈log₂ n⌉ + 2` slot
//!   bound suffices for a full Felsenstein traversal.

use crate::ids::DirEdgeId;
use crate::tree::Tree;

/// Computes, for every directed edge `x → y`, the number of leaves in the
/// subtree containing `x` when the branch `{x, y}` is cut.
///
/// Indexed by [`DirEdgeId::idx`]. Tip orientations count 1; the two
/// orientations of any edge always sum to `n`.
pub fn subtree_leaf_counts(tree: &Tree) -> Vec<u32> {
    dp_over_dir_edges(tree, |_| 1, |a, b| a + b)
}

/// Computes the Sethi–Ullman register need for every directed edge.
///
/// `need(d)` is the minimum number of CLV slots that must be concurrently
/// held to compute the CLV of `d` when no intermediate result is cached and
/// the more demanding dependency is always evaluated first. Tip orientations
/// need 0 slots (tip states are stored compactly, not in CLV slots); an
/// inner CLV over two tips needs 1 (its own slot).
pub fn register_need(tree: &Tree) -> Vec<u32> {
    dp_over_dir_edges(
        tree,
        |_| 0,
        |a, b| {
            let combined = if a == b { a + 1 } else { a.max(b) };
            combined.max(1)
        },
    )
}

/// Generic bottom-up DP over directed edges: `tip` seeds tip orientations,
/// `combine` merges the two dependency values of an inner orientation.
///
/// Runs in O(n) using a Kahn-style topological sweep (no recursion, so
/// 100 000-leaf caterpillars are fine).
pub fn dp_over_dir_edges<T: Copy + Default>(
    tree: &Tree,
    tip: impl Fn(DirEdgeId) -> T,
    combine: impl Fn(T, T) -> T,
) -> Vec<T> {
    let m = tree.n_dir_edges();
    let mut value = vec![T::default(); m];
    let mut missing = vec![0u8; m];
    let mut queue: Vec<DirEdgeId> = Vec::with_capacity(m);
    for d in tree.all_dir_edges() {
        if tree.is_leaf(tree.src(d)) {
            value[d.idx()] = tip(d);
            queue.push(d);
        } else {
            missing[d.idx()] = 2;
        }
    }
    // dependents[d] = directed edges whose dependency list contains d.
    // d = (x → y) feeds every (y → z) with z ≠ x, i.e. the other two
    // orientations out of y (when y is inner).
    let mut head = 0;
    while head < queue.len() {
        let d = queue[head];
        head += 1;
        let y = tree.dst(d);
        if tree.is_leaf(y) {
            continue;
        }
        for &(w, e) in tree.neighbors(y) {
            if e == d.edge() {
                continue;
            }
            let _ = w;
            let dep = tree.dir_from(e, y); // y → w
            let i = dep.idx();
            missing[i] -= 1;
            if missing[i] == 0 {
                let [c1, c2] = tree.deps(dep).expect("inner orientation has deps");
                value[i] = combine(value[c1.idx()], value[c2.idx()]);
                queue.push(dep);
            }
        }
    }
    debug_assert_eq!(queue.len(), m, "DP did not reach every directed edge");
    value
}

/// The paper's safe upper bound on the number of CLV slots required to
/// evaluate a tree of `n` leaves with the Felsenstein pruning algorithm:
/// `⌈log₂ n⌉ + 2`.
pub fn min_slots_bound(n_leaves: usize) -> usize {
    assert!(n_leaves >= 3, "unrooted binary trees need ≥ 3 leaves");
    (usize::BITS - (n_leaves - 1).leading_zeros()) as usize + 2
}

/// The maximum register need over all directed edges — the true minimum slot
/// count for a single-CLV evaluation on this specific topology.
pub fn max_register_need(tree: &Tree) -> u32 {
    register_need(tree).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::tree::{quartet, tripod};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn leaf_counts_tripod() {
        let t = tripod(["A", "B", "C"], [0.1; 3]).unwrap();
        let counts = subtree_leaf_counts(&t);
        for d in t.all_dir_edges() {
            let c = counts[d.idx()];
            if t.is_leaf(t.src(d)) {
                assert_eq!(c, 1);
            } else {
                assert_eq!(c, 2);
            }
            // Complementary orientations partition the leaves.
            assert_eq!(c + counts[d.reversed().idx()], 3);
        }
    }

    #[test]
    fn leaf_counts_partition_property() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [4usize, 9, 33, 128] {
            let t = generate::yule(n, 0.1, &mut rng).unwrap();
            let counts = subtree_leaf_counts(&t);
            for d in t.all_dir_edges() {
                assert_eq!(counts[d.idx()] + counts[d.reversed().idx()], n as u32);
            }
        }
    }

    #[test]
    fn register_need_quartet() {
        let t = quartet(["a", "b", "c", "d"], [0.1; 5]).unwrap();
        let need = register_need(&t);
        for d in t.all_dir_edges() {
            let r = need[d.idx()];
            if t.is_leaf(t.src(d)) {
                assert_eq!(r, 0);
            } else {
                // Every inner CLV in a quartet depends on a tip and at most
                // one inner CLV over two tips.
                assert!((1..=2).contains(&r), "need {r}");
            }
        }
    }

    #[test]
    fn balanced_tree_respects_log_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in 2..9u32 {
            let n = 1usize << k;
            let t = generate::balanced(n, 0.05, &mut rng).unwrap();
            let max_need = max_register_need(&t) as usize;
            let bound = min_slots_bound(n);
            assert!(max_need < bound, "balanced n={n}: need {max_need} + root > bound {bound}");
        }
    }

    #[test]
    fn caterpillar_needs_constant_registers() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = generate::caterpillar(64, 0.05, &mut rng).unwrap();
        // A caterpillar evaluated heavy-child-first needs O(1) slots.
        assert!(max_register_need(&t) <= 3);
    }

    #[test]
    fn min_slots_bound_values() {
        assert_eq!(min_slots_bound(4), 4); // log2(4)=2, +2
        assert_eq!(min_slots_bound(8), 5);
        assert_eq!(min_slots_bound(9), 6); // ceil(log2 9) = 4
        assert_eq!(min_slots_bound(512), 11);
        assert_eq!(min_slots_bound(20_000), 17); // ceil(log2 20000) = 15
    }
}
