//! Error type for tree construction and parsing.

use std::fmt;

/// Errors produced while building or parsing trees.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// The tree has fewer than three leaves; unrooted binary likelihood
    /// machinery needs at least one inner node.
    TooFewLeaves(usize),
    /// A node violates the strictly-binary (unrooted) degree constraint.
    NotBinary {
        /// The offending node id.
        node: u32,
        /// Its degree.
        degree: usize,
    },
    /// Newick text could not be parsed.
    Parse {
        /// Byte offset of the error.
        pos: usize,
        /// What went wrong.
        msg: String,
    },
    /// A taxon name occurs more than once.
    DuplicateTaxon(String),
    /// A branch length is negative, NaN, or infinite.
    BadBranchLength {
        /// The offending edge id.
        edge: u32,
        /// The rejected value.
        value: f64,
    },
    /// The builder produced a disconnected or cyclic graph.
    Malformed(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::TooFewLeaves(n) => {
                write!(f, "tree has {n} leaves; at least 3 are required")
            }
            TreeError::NotBinary { node, degree } => {
                write!(f, "node {node} has degree {degree}; unrooted binary trees require leaves of degree 1 and inner nodes of degree 3")
            }
            TreeError::Parse { pos, msg } => write!(f, "newick parse error at byte {pos}: {msg}"),
            TreeError::DuplicateTaxon(name) => write!(f, "duplicate taxon name: {name:?}"),
            TreeError::BadBranchLength { edge, value } => {
                write!(f, "edge {edge} has invalid branch length {value}")
            }
            TreeError::Malformed(msg) => write!(f, "malformed tree: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}
