//! Random and deterministic tree generators.
//!
//! These back the synthetic datasets: the paper's reference trees are
//! empirical, but for the memory/runtime behavior under study only the
//! *shape statistics* (leaf count, balance, branch-length scale) matter.
//!
//! * [`yule`] — birth-process trees (split a random extant leaf), the
//!   standard null model for species trees; moderately balanced.
//! * [`uniform_topology`] — attach each new leaf to a uniformly random
//!   branch (the "PDA" model); less balanced than Yule.
//! * [`caterpillar`] — maximally unbalanced comb; adversarial case for
//!   subtree-depth statistics.
//! * [`balanced`] — fully balanced tree (power-of-two leaves); the
//!   worst case of the `⌈log₂ n⌉ + 2` slot bound.
//!
//! All branch lengths are drawn i.i.d. exponential with a given mean, the
//! conventional prior for phylogenetic branch lengths.

use crate::error::TreeError;
use crate::tree::{BuildNode, Tree, TreeBuilder};
use rand::Rng;

/// Draws an exponential branch length with the given mean, bounded away
/// from zero so transition matrices stay well-conditioned.
fn exp_len(mean: f64, rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    (-mean * u.ln()).max(1e-6)
}

/// Internal growth structure: a tree under construction, represented by a
/// set of edges over provisional node handles.
struct Growing {
    builder: TreeBuilder,
    /// Current edges; attaching a leaf splits one entry into three.
    edges: Vec<(BuildNode, BuildNode)>,
    /// Indices into `edges` that are pendant to a leaf (for Yule growth).
    pendant: Vec<usize>,
}

impl Growing {
    /// Starts from the 3-leaf tripod.
    fn tripod(names: &mut impl Iterator<Item = String>) -> Self {
        let mut builder = TreeBuilder::new();
        let center = builder.add_inner();
        let mut edges = Vec::new();
        let mut pendant = Vec::new();
        for _ in 0..3 {
            let leaf = builder.add_leaf(names.next().expect("name supply"));
            pendant.push(edges.len());
            edges.push((center, leaf));
        }
        Growing { builder, edges, pendant }
    }

    /// Splits edge `ei` by a new inner node and hangs a fresh leaf off it.
    fn attach_leaf(&mut self, ei: usize, name: String) {
        let (u, v) = self.edges[ei];
        let w = self.builder.add_inner();
        let leaf = self.builder.add_leaf(name);
        // Replace (u,v) with (u,w); add (w,v) and the new pendant (w,leaf).
        self.edges[ei] = (u, w);
        self.edges.push((w, v));
        self.pendant.push(self.edges.len());
        self.edges.push((w, leaf));
    }

    /// Assigns lengths and finalizes.
    fn finish(mut self, mean_len: f64, rng: &mut impl Rng) -> Result<Tree, TreeError> {
        for &(u, v) in &self.edges {
            self.builder.connect(u, v, exp_len(mean_len, rng));
        }
        self.builder.build()
    }
}

fn default_names(n: usize) -> impl Iterator<Item = String> {
    (0..n).map(|i| format!("T{i:05}"))
}

/// Generates a Yule (pure-birth) tree with `n` leaves and exponential branch
/// lengths of the given mean.
pub fn yule(n: usize, mean_len: f64, rng: &mut impl Rng) -> Result<Tree, TreeError> {
    if n < 3 {
        return Err(TreeError::TooFewLeaves(n));
    }
    let mut names = default_names(n);
    let mut g = Growing::tripod(&mut names);
    for name in names {
        // Yule: split a uniformly random extant leaf = attach to a random
        // pendant edge. Note: `attach_leaf` turns the chosen pendant edge
        // into an internal edge (u,w), so the pendant list entry must be
        // repointed at the surviving pendant half (w,v).
        let k = rng.gen_range(0..g.pendant.len());
        let ei = g.pendant[k];
        g.pendant[k] = g.edges.len(); // (w, v) keeps the original leaf v
        g.attach_leaf(ei, name);
    }
    g.finish(mean_len, rng)
}

/// Generates a tree by attaching each new leaf to a uniformly random branch
/// (the proportional-to-distinguishable-arrangements model).
pub fn uniform_topology(n: usize, mean_len: f64, rng: &mut impl Rng) -> Result<Tree, TreeError> {
    if n < 3 {
        return Err(TreeError::TooFewLeaves(n));
    }
    let mut names = default_names(n);
    let mut g = Growing::tripod(&mut names);
    for name in names {
        let ei = rng.gen_range(0..g.edges.len());
        g.attach_leaf(ei, name);
    }
    g.finish(mean_len, rng)
}

/// Generates the maximally unbalanced caterpillar (comb) tree.
pub fn caterpillar(n: usize, mean_len: f64, rng: &mut impl Rng) -> Result<Tree, TreeError> {
    if n < 3 {
        return Err(TreeError::TooFewLeaves(n));
    }
    let mut names = default_names(n);
    let mut g = Growing::tripod(&mut names);
    for name in names {
        // Always extend at the most recently created pendant edge,
        // producing a comb.
        let ei = *g.pendant.last().unwrap();
        g.attach_leaf(ei, name);
    }
    g.finish(mean_len, rng)
}

/// Generates a fully balanced tree. `n` must be a power of two and ≥ 4.
///
/// This is the topology for which the `⌈log₂ n⌉ + 2` bound is tight.
pub fn balanced(n: usize, mean_len: f64, rng: &mut impl Rng) -> Result<Tree, TreeError> {
    if n < 4 || !n.is_power_of_two() {
        return Err(TreeError::Malformed(format!(
            "balanced trees require a power-of-two leaf count ≥ 4, got {n}"
        )));
    }
    let mut builder = TreeBuilder::new();
    let mut next = 0usize;

    fn subtree(
        size: usize,
        builder: &mut TreeBuilder,
        next: &mut usize,
        mean_len: f64,
        rng: &mut impl Rng,
    ) -> BuildNode {
        if size == 1 {
            let node = builder.add_leaf(format!("T{:05}", *next));
            *next += 1;
            return node;
        }
        let root = builder.add_inner();
        let left = subtree(size / 2, builder, next, mean_len, rng);
        let right = subtree(size / 2, builder, next, mean_len, rng);
        builder.connect(root, left, exp_len(mean_len, rng));
        builder.connect(root, right, exp_len(mean_len, rng));
        root
    }

    // Unrooted: join the two half-trees directly by an edge.
    let left = subtree(n / 2, &mut builder, &mut next, mean_len, rng);
    let right = subtree(n / 2, &mut builder, &mut next, mean_len, rng);
    builder.connect(left, right, exp_len(mean_len, rng));
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn yule_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [3usize, 4, 10, 100, 513] {
            let t = yule(n, 0.1, &mut rng).unwrap();
            assert_eq!(t.n_leaves(), n);
            assert_eq!(t.n_edges(), 2 * n - 3);
            t.validate().unwrap();
        }
    }

    #[test]
    fn uniform_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform_topology(50, 0.1, &mut rng).unwrap();
        assert_eq!(t.n_leaves(), 50);
        t.validate().unwrap();
    }

    #[test]
    fn caterpillar_is_maximally_deep() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let t = caterpillar(n, 0.1, &mut rng).unwrap();
        let counts = stats::subtree_leaf_counts(&t);
        // A caterpillar has inner orientations summarizing every size
        // 2..n-1.
        let mut sizes: Vec<u32> =
            t.inner_dir_edges().map(|d| counts[d.idx()]).filter(|&c| c >= 2).collect();
        sizes.sort_unstable();
        sizes.dedup();
        assert!(sizes.len() >= n - 2, "sizes {sizes:?}");
    }

    #[test]
    fn balanced_rejects_non_powers() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(balanced(6, 0.1, &mut rng).is_err());
        assert!(balanced(2, 0.1, &mut rng).is_err());
        assert!(balanced(16, 0.1, &mut rng).is_ok());
    }

    #[test]
    fn balanced_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = balanced(32, 0.1, &mut rng).unwrap();
        let counts = stats::subtree_leaf_counts(&t);
        // Every inner orientation summarizes a power of two (or n/2 on the
        // central edge).
        for d in t.inner_dir_edges() {
            let c = counts[d.idx()];
            assert!(c.is_power_of_two() || (32 - c).is_power_of_two(), "count {c}");
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let t1 = yule(40, 0.1, &mut StdRng::seed_from_u64(9)).unwrap();
        let t2 = yule(40, 0.1, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(crate::newick::write(&t1), crate::newick::write(&t2));
        let t3 = yule(40, 0.1, &mut StdRng::seed_from_u64(10)).unwrap();
        assert_ne!(crate::newick::write(&t1), crate::newick::write(&t3));
    }

    #[test]
    fn branch_lengths_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = yule(64, 0.05, &mut rng).unwrap();
        for e in t.edges() {
            assert!(e.length > 0.0 && e.length.is_finite());
        }
    }
}
