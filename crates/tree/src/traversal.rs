//! Traversal planning for the Felsenstein pruning algorithm.
//!
//! A *plan* is a post-order list of inner-origin directed edges: computing
//! the CLVs in list order guarantees that both dependencies of each entry
//! are available (either computed earlier in the list, already cached, or
//! tips). Plans are consumed by the likelihood engine and by the
//! slot-constrained FPA of the AMC crate.

use crate::ids::{DirEdgeId, EdgeId};
use crate::tree::Tree;

/// Controls the order in which the two dependencies of a CLV are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Dependencies in adjacency order. Fine when memory is unconstrained.
    #[default]
    AsIs,
    /// Descend into the dependency with the larger Sethi–Ullman register
    /// need first. This is the order under which the `⌈log₂ n⌉ + 2` slot
    /// bound holds; always use it when slots are scarce.
    MinRegisters,
}

/// Builds the post-order plan to compute the CLV of `target`, skipping any
/// directed edge for which `cached` returns true (its CLV is assumed
/// available and pinned by the caller).
///
/// The returned list contains only inner-origin directed edges (tips need no
/// computation) and ends with `target` itself unless `target` is cached or
/// tip-origin. Iterative, so arbitrarily deep trees are safe.
pub fn plan_for(
    tree: &Tree,
    target: DirEdgeId,
    policy: OrderPolicy,
    register_need: Option<&[u32]>,
    cached: impl Fn(DirEdgeId) -> bool,
) -> Vec<DirEdgeId> {
    let mut plan = Vec::new();
    extend_plan_for(tree, target, policy, register_need, &cached, &mut plan);
    plan
}

/// Like [`plan_for`], but appends to an existing plan and treats edges
/// already in the plan as cached is the *caller's* responsibility (pass an
/// appropriate `cached` closure).
pub fn extend_plan_for(
    tree: &Tree,
    target: DirEdgeId,
    policy: OrderPolicy,
    register_need: Option<&[u32]>,
    cached: &impl Fn(DirEdgeId) -> bool,
    plan: &mut Vec<DirEdgeId>,
) {
    if tree.is_leaf(tree.src(target)) || cached(target) {
        return;
    }
    debug_assert!(
        !(policy == OrderPolicy::MinRegisters && register_need.is_none()),
        "MinRegisters ordering requires the register_need table"
    );
    // Iterative post-order: (dir_edge, expanded?) entries.
    let mut stack: Vec<(DirEdgeId, bool)> = vec![(target, false)];
    while let Some((d, expanded)) = stack.pop() {
        if expanded {
            plan.push(d);
            continue;
        }
        stack.push((d, true));
        let Some(mut deps) = tree.deps(d) else { continue };
        if let (OrderPolicy::MinRegisters, Some(need)) = (policy, register_need) {
            // Heavier dependency first means it is *popped* first, so push
            // it last.
            if need[deps[0].idx()] > need[deps[1].idx()] {
                deps.swap(0, 1);
            }
        }
        for dep in deps {
            if !tree.is_leaf(tree.src(dep)) && !cached(dep) {
                stack.push((dep, false));
            }
        }
    }
    // The DFS may visit a directed edge twice if the two dependency
    // subtrees overlap; in a tree they never do, so the plan has no
    // duplicates by construction.
}

/// Builds the plan that makes *both* orientations of `edge` available —
/// everything needed to evaluate the tree likelihood at that branch
/// (virtual root placement).
pub fn plan_for_edge(
    tree: &Tree,
    edge: EdgeId,
    policy: OrderPolicy,
    register_need: Option<&[u32]>,
    cached: impl Fn(DirEdgeId) -> bool,
) -> Vec<DirEdgeId> {
    let fwd = DirEdgeId::new(edge, 0);
    let bwd = DirEdgeId::new(edge, 1);
    let mut plan = Vec::new();
    extend_plan_for(tree, fwd, policy, register_need, &cached, &mut plan);
    extend_plan_for(tree, bwd, policy, register_need, &cached, &mut plan);
    plan
}

/// A full sweep: the plan computing every inner-origin directed edge of the
/// tree (all `3(n−2)` CLVs), as used by the full-memory placement engine.
///
/// The sweep is organized as `plan_for_edge` over every branch with a
/// shared "already planned" set, so each CLV appears exactly once and in a
/// valid order.
pub fn plan_all(tree: &Tree, policy: OrderPolicy, register_need: Option<&[u32]>) -> Vec<DirEdgeId> {
    let mut planned = vec![false; tree.n_dir_edges()];
    let mut plan = Vec::with_capacity(tree.n_inner_dir_edges());
    for edge in tree.all_edges() {
        for side in 0..2 {
            let d = DirEdgeId::new(edge, side);
            let before = plan.len();
            extend_plan_for(tree, d, policy, register_need, &|x| planned[x.idx()], &mut plan);
            for &p in &plan[before..] {
                planned[p.idx()] = true;
            }
        }
    }
    plan
}

/// Orders the branches by a depth-first walk of the tree (an Euler-tour
/// edge order): consecutive edges share most of their subtree CLVs, which
/// is what makes slot-managed branch sweeps cheap. EPA-NG's branch-block
/// iteration visits branches in traversal order for exactly this reason.
pub fn edge_dfs_order(tree: &Tree) -> Vec<EdgeId> {
    let start = tree.neighbors(crate::NodeId(0))[0].0; // inner anchor
    let mut order = Vec::with_capacity(tree.n_edges());
    let mut seen_edge = vec![false; tree.n_edges()];
    let mut seen_node = vec![false; tree.n_nodes()];
    let mut stack = vec![start];
    seen_node[start.idx()] = true;
    while let Some(u) = stack.pop() {
        for &(v, e) in tree.neighbors(u) {
            if !seen_edge[e.idx()] {
                seen_edge[e.idx()] = true;
                order.push(e);
            }
            if !seen_node[v.idx()] {
                seen_node[v.idx()] = true;
                stack.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), tree.n_edges());
    order
}

/// Checks that `plan` is dependency-valid: each entry's dependencies are
/// tips, cached, or appear earlier in the plan. Returns the first violating
/// entry, if any. Used by tests and debug assertions.
pub fn first_violation(
    tree: &Tree,
    plan: &[DirEdgeId],
    cached: impl Fn(DirEdgeId) -> bool,
) -> Option<DirEdgeId> {
    let mut done = vec![false; tree.n_dir_edges()];
    for &d in plan {
        if let Some(deps) = tree.deps(d) {
            for dep in deps {
                if !tree.is_leaf(tree.src(dep)) && !done[dep.idx()] && !cached(dep) {
                    return Some(d);
                }
            }
        }
        done[d.idx()] = true;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn never(_: DirEdgeId) -> bool {
        false
    }

    #[test]
    fn plan_for_tip_is_empty() {
        let t = crate::tree::tripod(["A", "B", "C"], [0.1; 3]).unwrap();
        let tip_dir = t.dir_between(crate::NodeId(0), crate::NodeId(3)).unwrap();
        assert!(plan_for(&t, tip_dir, OrderPolicy::AsIs, None, never).is_empty());
    }

    #[test]
    fn plan_covers_dependencies() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = generate::yule(40, 0.1, &mut rng).unwrap();
        for d in t.inner_dir_edges() {
            let plan = plan_for(&t, d, OrderPolicy::AsIs, None, never);
            assert_eq!(*plan.last().unwrap(), d);
            assert!(first_violation(&t, &plan, never).is_none());
        }
    }

    #[test]
    fn plan_respects_cache() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = generate::yule(30, 0.1, &mut rng).unwrap();
        let d = t.inner_dir_edges().last().unwrap();
        let full = plan_for(&t, d, OrderPolicy::AsIs, None, never);
        // Cache everything except the target: plan shrinks to just the
        // target.
        let cached = |x: DirEdgeId| x != d;
        let small = plan_for(&t, d, OrderPolicy::AsIs, None, cached);
        assert_eq!(small, vec![d]);
        assert!(full.len() > 1);
        assert!(first_violation(&t, &small, cached).is_none());
    }

    #[test]
    fn plan_all_is_complete_and_unique() {
        let mut rng = StdRng::seed_from_u64(13);
        for gen in [generate::yule, generate::caterpillar, generate::uniform_topology] {
            let t = gen(25, 0.1, &mut rng).unwrap();
            let plan = plan_all(&t, OrderPolicy::AsIs, None);
            assert_eq!(plan.len(), t.n_inner_dir_edges());
            let mut seen = vec![false; t.n_dir_edges()];
            for &d in &plan {
                assert!(!seen[d.idx()], "duplicate {d:?}");
                seen[d.idx()] = true;
            }
            assert!(first_violation(&t, &plan, never).is_none());
        }
    }

    #[test]
    fn min_register_order_is_valid() {
        let mut rng = StdRng::seed_from_u64(14);
        let t = generate::balanced(64, 0.1, &mut rng).unwrap();
        let need = stats::register_need(&t);
        for d in t.inner_dir_edges().take(20) {
            let plan = plan_for(&t, d, OrderPolicy::MinRegisters, Some(&need), never);
            assert!(first_violation(&t, &plan, never).is_none());
        }
    }

    #[test]
    fn plan_for_edge_covers_both_sides() {
        let mut rng = StdRng::seed_from_u64(15);
        let t = generate::yule(20, 0.1, &mut rng).unwrap();
        for e in t.all_edges() {
            let plan = plan_for_edge(&t, e, OrderPolicy::AsIs, None, never);
            assert!(first_violation(&t, &plan, never).is_none());
            for side in 0..2 {
                let d = DirEdgeId::new(e, side);
                if !t.is_leaf(t.src(d)) {
                    assert!(plan.contains(&d));
                }
            }
        }
    }
}
