//! Index newtypes for nodes, edges, and directed edges.
//!
//! All three are thin wrappers around `u32`: trees with more than 4 billion
//! nodes are out of scope, and the narrower type halves the footprint of the
//! large index tables kept by the CLV slot manager.

use std::fmt;

/// Identifies a node (leaf or inner) of a [`Tree`](crate::Tree).
///
/// Leaves always occupy ids `0..n_leaves`; inner nodes follow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies an undirected branch of a [`Tree`](crate::Tree).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Identifies a *directed* edge `x → y` of a [`Tree`](crate::Tree).
///
/// Encoded as `2 * edge + side`, where `side == 0` is the `a → b`
/// orientation of the underlying [`Edge`](crate::Edge) and `side == 1` is
/// `b → a`. The conditional likelihood vector attached to `x → y`
/// summarizes the subtree containing `x` once the branch `{x, y}` is cut.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirEdgeId(pub u32);

impl NodeId {
    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl DirEdgeId {
    /// Builds the directed edge for `edge` in the given orientation.
    #[inline]
    pub fn new(edge: EdgeId, side: u8) -> Self {
        debug_assert!(side < 2);
        DirEdgeId(edge.0 * 2 + side as u32)
    }

    /// The underlying undirected edge.
    #[inline]
    pub fn edge(self) -> EdgeId {
        EdgeId(self.0 / 2)
    }

    /// Orientation: `0` for `a → b`, `1` for `b → a`.
    #[inline]
    pub fn side(self) -> u8 {
        (self.0 & 1) as u8
    }

    /// The same branch traversed in the opposite direction.
    #[inline]
    pub fn reversed(self) -> Self {
        DirEdgeId(self.0 ^ 1)
    }

    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Debug for DirEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}({:?}{})", self.0, self.edge(), if self.side() == 0 { ">" } else { "<" })
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for DirEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_edge_round_trip() {
        let e = EdgeId(7);
        let fwd = DirEdgeId::new(e, 0);
        let bwd = DirEdgeId::new(e, 1);
        assert_eq!(fwd.edge(), e);
        assert_eq!(bwd.edge(), e);
        assert_eq!(fwd.side(), 0);
        assert_eq!(bwd.side(), 1);
        assert_eq!(fwd.reversed(), bwd);
        assert_eq!(bwd.reversed(), fwd);
        assert_eq!(fwd.reversed().reversed(), fwd);
    }

    #[test]
    fn dir_edge_indices_are_dense() {
        // Directed edges for edges 0..k tile 0..2k without gaps.
        let mut seen = [false; 10];
        for e in 0..5 {
            for side in 0..2 {
                let d = DirEdgeId::new(EdgeId(e), side);
                assert!(!seen[d.idx()]);
                seen[d.idx()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(3)), "N3");
        assert_eq!(format!("{:?}", EdgeId(4)), "E4");
        let d = DirEdgeId::new(EdgeId(4), 1);
        assert_eq!(format!("{:?}", d), "D9(E4<)");
    }
}
