//! The unrooted, strictly binary phylogenetic tree.

use crate::error::TreeError;
use crate::ids::{DirEdgeId, EdgeId, NodeId};

/// An undirected branch between two nodes, with a branch length in expected
/// substitutions per site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint; the `a → b` orientation is [`DirEdgeId`] side 0.
    pub a: NodeId,
    /// The other endpoint; the `b → a` orientation is [`DirEdgeId`] side 1.
    pub b: NodeId,
    /// Branch length (non-negative, finite).
    pub length: f64,
}

/// Compact adjacency record: at most three (neighbor, edge) pairs.
#[derive(Debug, Clone, Copy)]
struct Adjacency {
    entries: [(NodeId, EdgeId); 3],
    len: u8,
}

impl Adjacency {
    fn empty() -> Self {
        Adjacency { entries: [(NodeId(u32::MAX), EdgeId(u32::MAX)); 3], len: 0 }
    }

    fn push(&mut self, node: NodeId, edge: EdgeId) -> Result<(), ()> {
        if self.len as usize >= 3 {
            return Err(());
        }
        self.entries[self.len as usize] = (node, edge);
        self.len += 1;
        Ok(())
    }

    fn as_slice(&self) -> &[(NodeId, EdgeId)] {
        &self.entries[..self.len as usize]
    }
}

/// An unrooted, strictly binary phylogenetic tree over `n ≥ 3` named leaves.
///
/// Invariants (checked at construction):
///
/// * leaves occupy node ids `0..n`, inner nodes `n..2n−2`;
/// * every leaf has degree 1, every inner node degree 3;
/// * there are exactly `2n − 3` edges and the graph is connected (hence a
///   tree);
/// * all branch lengths are finite and non-negative;
/// * taxon names are unique.
///
/// The tree is immutable after construction except for branch lengths
/// ([`Tree::set_edge_length`]); likelihood-based placement never changes the
/// reference topology.
#[derive(Debug, Clone)]
pub struct Tree {
    n_leaves: usize,
    taxa: Vec<String>,
    adj: Vec<Adjacency>,
    edges: Vec<Edge>,
}

impl Tree {
    /// Number of leaves (taxa) `n`.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of inner nodes, `n − 2`.
    #[inline]
    pub fn n_inner(&self) -> usize {
        self.n_leaves - 2
    }

    /// Total number of nodes, `2n − 2`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        2 * self.n_leaves - 2
    }

    /// Number of undirected branches, `2n − 3`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        2 * self.n_leaves - 3
    }

    /// Number of directed edges, `2 · (2n − 3)`.
    #[inline]
    pub fn n_dir_edges(&self) -> usize {
        2 * self.n_edges()
    }

    /// Number of *inner-origin* directed edges, i.e. the `3·(n − 2)` CLVs a
    /// full-memory placement engine materializes.
    #[inline]
    pub fn n_inner_dir_edges(&self) -> usize {
        3 * self.n_inner()
    }

    /// True iff `node` is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        node.idx() < self.n_leaves
    }

    /// The taxon name of a leaf node.
    ///
    /// # Panics
    /// Panics if `node` is not a leaf.
    #[inline]
    pub fn taxon(&self, node: NodeId) -> &str {
        &self.taxa[node.idx()]
    }

    /// All taxon names, indexed by leaf id.
    #[inline]
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Looks up a leaf by taxon name (linear scan; intended for tests and
    /// small trees — placement pipelines map names once up front).
    pub fn leaf_by_name(&self, name: &str) -> Option<NodeId> {
        self.taxa.iter().position(|t| t == name).map(|i| NodeId(i as u32))
    }

    /// The (neighbor, edge) pairs adjacent to `node`: one entry for a leaf,
    /// three for an inner node.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, EdgeId)] {
        self.adj[node.idx()].as_slice()
    }

    /// The undirected edge record.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.idx()]
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Branch length of `e`.
    #[inline]
    pub fn edge_length(&self, e: EdgeId) -> f64 {
        self.edges[e.idx()].length
    }

    /// Overwrites the branch length of `e` (used by branch-length
    /// optimization during thorough placement).
    pub fn set_edge_length(&mut self, e: EdgeId, length: f64) -> Result<(), TreeError> {
        if !length.is_finite() || length < 0.0 {
            return Err(TreeError::BadBranchLength { edge: e.0, value: length });
        }
        self.edges[e.idx()].length = length;
        Ok(())
    }

    /// Source node of a directed edge `x → y` (that is, `x`).
    #[inline]
    pub fn src(&self, d: DirEdgeId) -> NodeId {
        let e = &self.edges[d.edge().idx()];
        if d.side() == 0 {
            e.a
        } else {
            e.b
        }
    }

    /// Destination node of a directed edge `x → y` (that is, `y`).
    #[inline]
    pub fn dst(&self, d: DirEdgeId) -> NodeId {
        let e = &self.edges[d.edge().idx()];
        if d.side() == 0 {
            e.b
        } else {
            e.a
        }
    }

    /// The directed edge `x → y` along the given undirected edge.
    ///
    /// # Panics
    /// Panics (in debug builds) if `x` is not an endpoint of `e`.
    #[inline]
    pub fn dir_from(&self, e: EdgeId, x: NodeId) -> DirEdgeId {
        let rec = &self.edges[e.idx()];
        debug_assert!(rec.a == x || rec.b == x, "node {x:?} not on edge {e:?}");
        DirEdgeId::new(e, if rec.a == x { 0 } else { 1 })
    }

    /// The directed edge between adjacent nodes `x → y`, if they share an
    /// edge.
    pub fn dir_between(&self, x: NodeId, y: NodeId) -> Option<DirEdgeId> {
        self.neighbors(x).iter().find(|&&(w, _)| w == y).map(|&(_, e)| self.dir_from(e, x))
    }

    /// The two dependency directed edges of the CLV for `d = x → y`:
    /// the orientations `p → x` and `q → x` from the other two neighbors
    /// of `x`. Returns `None` when `x` is a leaf (tip CLVs have no
    /// dependencies).
    #[inline]
    pub fn deps(&self, d: DirEdgeId) -> Option<[DirEdgeId; 2]> {
        let x = self.src(d);
        if self.is_leaf(x) {
            return None;
        }
        let skip = d.edge();
        let mut out = [DirEdgeId(u32::MAX); 2];
        let mut k = 0;
        for &(w, e) in self.neighbors(x) {
            if e != skip {
                out[k] = self.dir_from(e, w);
                k += 1;
            }
        }
        debug_assert_eq!(k, 2);
        Some(out)
    }

    /// Outgoing directed edges of `node` (`x → ·` orientations).
    pub fn dirs_from(&self, node: NodeId) -> impl Iterator<Item = DirEdgeId> + '_ {
        self.neighbors(node).iter().map(move |&(_, e)| self.dir_from(e, node))
    }

    /// Iterates all directed edges.
    pub fn all_dir_edges(&self) -> impl Iterator<Item = DirEdgeId> {
        (0..self.n_dir_edges() as u32).map(DirEdgeId)
    }

    /// Iterates all undirected edges.
    pub fn all_edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.n_edges() as u32).map(EdgeId)
    }

    /// Iterates the directed edges whose CLV is non-trivial (source is an
    /// inner node): the `3 (n − 2)` CLVs of the EPA-NG layout.
    pub fn inner_dir_edges(&self) -> impl Iterator<Item = DirEdgeId> + '_ {
        self.all_dir_edges().filter(move |&d| !self.is_leaf(self.src(d)))
    }

    /// Total branch length of the tree.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// Validates all structural invariants. Called by the builder; exposed
    /// for tests and for code that mutates branch lengths.
    pub fn validate(&self) -> Result<(), TreeError> {
        let n = self.n_leaves;
        if n < 3 {
            return Err(TreeError::TooFewLeaves(n));
        }
        if self.adj.len() != 2 * n - 2 {
            return Err(TreeError::Malformed(format!(
                "expected {} nodes, found {}",
                2 * n - 2,
                self.adj.len()
            )));
        }
        if self.edges.len() != 2 * n - 3 {
            return Err(TreeError::Malformed(format!(
                "expected {} edges, found {}",
                2 * n - 3,
                self.edges.len()
            )));
        }
        for (i, adj) in self.adj.iter().enumerate() {
            let want = if i < n { 1 } else { 3 };
            if adj.len as usize != want {
                return Err(TreeError::NotBinary { node: i as u32, degree: adj.len as usize });
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !e.length.is_finite() || e.length < 0.0 {
                return Err(TreeError::BadBranchLength { edge: i as u32, value: e.length });
            }
        }
        // Connectivity: BFS from node 0 must reach every node.
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v.idx()] {
                    seen[v.idx()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count != self.adj.len() {
            return Err(TreeError::Malformed(format!(
                "graph is disconnected: reached {count} of {} nodes",
                self.adj.len()
            )));
        }
        let mut names: Vec<&str> = self.taxa.iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                return Err(TreeError::DuplicateTaxon(w[0].to_string()));
            }
        }
        Ok(())
    }
}

/// Provisional node handle used while building a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildNode(usize);

/// Incremental constructor for [`Tree`].
///
/// Nodes may be added in any order; `build` relabels them so leaves occupy
/// `0..n` (in insertion order) and inner nodes `n..2n−2`, then validates all
/// invariants.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<Option<String>>, // Some(name) = leaf, None = inner
    links: Vec<(usize, usize, f64)>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a leaf with the given taxon name.
    pub fn add_leaf(&mut self, name: impl Into<String>) -> BuildNode {
        self.nodes.push(Some(name.into()));
        BuildNode(self.nodes.len() - 1)
    }

    /// Adds an (anonymous) inner node.
    pub fn add_inner(&mut self) -> BuildNode {
        self.nodes.push(None);
        BuildNode(self.nodes.len() - 1)
    }

    /// Connects two nodes with a branch of the given length.
    pub fn connect(&mut self, u: BuildNode, v: BuildNode, length: f64) {
        self.links.push((u.0, v.0, length));
    }

    /// Number of leaves added so far.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Finalizes the tree, relabeling nodes and checking invariants.
    pub fn build(self) -> Result<Tree, TreeError> {
        let n_leaves = self.nodes.iter().filter(|n| n.is_some()).count();
        if n_leaves < 3 {
            return Err(TreeError::TooFewLeaves(n_leaves));
        }
        let n_nodes = self.nodes.len();
        // Relabel: leaves first in insertion order, then inner nodes.
        let mut remap = vec![0usize; n_nodes];
        let mut taxa = Vec::with_capacity(n_leaves);
        let mut next_leaf = 0usize;
        let mut next_inner = n_leaves;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Some(name) => {
                    remap[i] = next_leaf;
                    taxa.push(name.clone());
                    next_leaf += 1;
                }
                None => {
                    remap[i] = next_inner;
                    next_inner += 1;
                }
            }
        }
        let mut adj = vec![Adjacency::empty(); n_nodes];
        let mut edges = Vec::with_capacity(self.links.len());
        for (k, &(u, v, length)) in self.links.iter().enumerate() {
            if u >= n_nodes || v >= n_nodes || u == v {
                return Err(TreeError::Malformed(format!("bad link {u}-{v}")));
            }
            let (a, b) = (NodeId(remap[u] as u32), NodeId(remap[v] as u32));
            let e = EdgeId(k as u32);
            adj[a.idx()].push(b, e).map_err(|_| TreeError::NotBinary { node: a.0, degree: 4 })?;
            adj[b.idx()].push(a, e).map_err(|_| TreeError::NotBinary { node: b.0, degree: 4 })?;
            edges.push(Edge { a, b, length });
        }
        let tree = Tree { n_leaves, taxa, adj, edges };
        tree.validate()?;
        Ok(tree)
    }
}

/// Builds the smallest possible unrooted binary tree: three leaves joined at
/// a single inner node ("tripod"), with the given branch lengths.
pub fn tripod(names: [&str; 3], lengths: [f64; 3]) -> Result<Tree, TreeError> {
    let mut b = TreeBuilder::new();
    let center = b.add_inner();
    for (name, len) in names.iter().zip(lengths) {
        let leaf = b.add_leaf(*name);
        b.connect(center, leaf, len);
    }
    b.build()
}

/// Builds the four-leaf quartet `((a,b),(c,d))` with the given five branch
/// lengths: pendant a, b, internal, pendant c, d.
pub fn quartet(names: [&str; 4], lengths: [f64; 5]) -> Result<Tree, TreeError> {
    let mut b = TreeBuilder::new();
    let u = b.add_inner();
    let v = b.add_inner();
    let la = b.add_leaf(names[0]);
    let lb = b.add_leaf(names[1]);
    let lc = b.add_leaf(names[2]);
    let ld = b.add_leaf(names[3]);
    b.connect(u, la, lengths[0]);
    b.connect(u, lb, lengths[1]);
    b.connect(u, v, lengths[2]);
    b.connect(v, lc, lengths[3]);
    b.connect(v, ld, lengths[4]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tripod_shape() {
        let t = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.n_inner(), 1);
        assert_eq!(t.n_edges(), 3);
        assert_eq!(t.n_dir_edges(), 6);
        assert_eq!(t.n_inner_dir_edges(), 3);
        assert!((t.total_length() - 0.6).abs() < 1e-12);
        // Leaves are 0..3, inner node is 3.
        for l in 0..3 {
            assert!(t.is_leaf(NodeId(l)));
            assert_eq!(t.neighbors(NodeId(l)).len(), 1);
        }
        assert!(!t.is_leaf(NodeId(3)));
        assert_eq!(t.neighbors(NodeId(3)).len(), 3);
    }

    #[test]
    fn quartet_shape_and_deps() {
        let t = quartet(["a", "b", "c", "d"], [0.1; 5]).unwrap();
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.n_edges(), 5);
        assert_eq!(t.n_inner_dir_edges(), 6);
        // The internal edge connects the two inner nodes (ids 4 and 5).
        let internal =
            t.all_edges().find(|&e| !t.is_leaf(t.edge(e).a) && !t.is_leaf(t.edge(e).b)).unwrap();
        let d = t.dir_from(internal, t.edge(internal).a);
        let deps = t.deps(d).unwrap();
        // Both dependencies are tip orientations pointing at the source.
        for dep in deps {
            assert!(t.is_leaf(t.src(dep)));
            assert_eq!(t.dst(dep), t.src(d));
        }
    }

    #[test]
    fn dir_between_and_reverse() {
        let t = tripod(["A", "B", "C"], [1.0, 1.0, 1.0]).unwrap();
        let center = NodeId(3);
        let d = t.dir_between(NodeId(0), center).unwrap();
        assert_eq!(t.src(d), NodeId(0));
        assert_eq!(t.dst(d), center);
        let r = d.reversed();
        assert_eq!(t.src(r), center);
        assert_eq!(t.dst(r), NodeId(0));
        assert_eq!(t.dir_between(center, NodeId(0)), Some(r));
        assert_eq!(t.dir_between(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn builder_rejects_non_binary() {
        let mut b = TreeBuilder::new();
        let center = b.add_inner();
        for i in 0..4 {
            let l = b.add_leaf(format!("t{i}"));
            b.connect(center, l, 0.1);
        }
        assert!(matches!(b.build(), Err(TreeError::NotBinary { .. })));
    }

    #[test]
    fn builder_rejects_duplicate_taxa() {
        let err = tripod(["A", "A", "C"], [0.1, 0.2, 0.3]).unwrap_err();
        assert!(matches!(err, TreeError::DuplicateTaxon(_)));
    }

    #[test]
    fn builder_rejects_too_few() {
        let mut b = TreeBuilder::new();
        b.add_leaf("A");
        b.add_leaf("B");
        assert!(matches!(b.build(), Err(TreeError::TooFewLeaves(2))));
    }

    #[test]
    fn set_edge_length_validates() {
        let mut t = tripod(["A", "B", "C"], [0.1, 0.2, 0.3]).unwrap();
        t.set_edge_length(EdgeId(0), 0.5).unwrap();
        assert_eq!(t.edge_length(EdgeId(0)), 0.5);
        assert!(t.set_edge_length(EdgeId(0), -1.0).is_err());
        assert!(t.set_edge_length(EdgeId(0), f64::NAN).is_err());
    }

    #[test]
    fn disconnected_graph_rejected() {
        // Two tripods' worth of nodes, but one link redirected to form a
        // 4-degree node would be caught earlier; build a genuinely
        // disconnected multigraph instead via raw parts is not possible
        // through the builder, so check the degree path.
        let mut b = TreeBuilder::new();
        let c1 = b.add_inner();
        let a = b.add_leaf("a");
        let x = b.add_leaf("x");
        let y = b.add_leaf("y");
        // c1 with only 2 connections -> degree error
        b.connect(c1, a, 0.1);
        b.connect(c1, x, 0.1);
        let _ = y;
        assert!(b.build().is_err());
    }
}
