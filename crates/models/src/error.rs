//! Error type for model construction.

use std::fmt;

/// Errors produced while building substitution models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A rate, frequency, or shape parameter is out of range.
    BadParameter(String),
    /// State frequencies do not form a probability distribution.
    BadFrequencies(String),
    /// Eigendecomposition failed to converge.
    EigenFailure(String),
    /// Mismatched dimensions between model pieces.
    Dimension {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        found: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadParameter(msg) => write!(f, "bad model parameter: {msg}"),
            ModelError::BadFrequencies(msg) => write!(f, "bad state frequencies: {msg}"),
            ModelError::EigenFailure(msg) => write!(f, "eigendecomposition failed: {msg}"),
            ModelError::Dimension { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ModelError {}
