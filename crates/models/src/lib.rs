//! Statistical models of sequence evolution.
//!
//! Everything a likelihood kernel needs to turn branch lengths into
//! transition probabilities:
//!
//! * [`numerics`] — special functions (log-gamma, regularized incomplete
//!   gamma, gamma/normal quantiles) implemented from scratch;
//! * [`gamma`] — Yang-style discrete Γ rate heterogeneity (the "+G4" in
//!   model names), the standard mixture that multiplies CLV memory by the
//!   number of rate categories;
//! * [`linalg`] — small dense matrices and a Jacobi eigensolver for
//!   symmetric matrices;
//! * [`dna`] / [`aa`] — concrete time-reversible rate matrices: JC69, K80,
//!   HKY85, GTR for nucleotides, and a synthetic empirical-style
//!   exchangeability matrix for amino acids (see `DESIGN.md` §2 for why a
//!   synthetic matrix is a faithful substitute here);
//! * [`subst`] — the compiled [`SubstModel`]: eigendecomposition of the
//!   rate matrix and fast `P(t)` evaluation, plus the per-rate-category
//!   probability matrices consumed by the kernels.

pub mod aa;
pub mod dna;
pub mod error;
pub mod gamma;
pub mod linalg;
pub mod numerics;
pub mod subst;

pub use error::ModelError;
pub use gamma::DiscreteGamma;
pub use subst::{RateMatrix, SubstModel};
