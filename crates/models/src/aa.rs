//! Amino-acid substitution models.
//!
//! The paper's `serratus` dataset uses an empirical protein model (LG-style)
//! whose published exchangeability table is not redistributable here.
//! Since the memory/runtime behavior under study depends only on the
//! *dimensionality* of the model (20 states → 25× larger CLVs and P-matrix
//! blocks than DNA), we substitute a **synthetic empirical-style matrix**:
//! deterministic log-normal-ish exchangeabilities and mildly skewed
//! frequencies, seeded so datasets are reproducible. See `DESIGN.md` §2.

use crate::error::ModelError;
use crate::subst::RateMatrix;

/// SplitMix64: tiny deterministic generator for the synthetic tables.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A synthetic 20-state empirical-style rate matrix.
///
/// Exchangeabilities are drawn as `exp(3·u − 1.5)` (spanning roughly two
/// orders of magnitude, like real LG/WAG tables); frequencies are Dirichlet-
/// flavored perturbations of uniform. Deterministic in `seed`.
pub fn synthetic_aa(seed: u64) -> Result<RateMatrix, ModelError> {
    let mut state = seed ^ 0xA55A_5AA5_55AA_AA55;
    let mut exch = Vec::with_capacity(190);
    for _ in 0..190 {
        let u = unit(&mut state);
        exch.push((3.0 * u - 1.5).exp());
    }
    let mut freqs = Vec::with_capacity(20);
    let mut sum = 0.0;
    for _ in 0..20 {
        // Exponential draws normalized = Dirichlet(1) sample, softened
        // toward uniform to keep all frequencies well away from zero.
        let e = -f64::ln(unit(&mut state).max(1e-12));
        let f = 0.5 * e + 0.5;
        freqs.push(f);
        sum += f;
    }
    for f in &mut freqs {
        *f /= sum;
    }
    RateMatrix::new(20, &exch, &freqs)
}

/// A uniform ("Poisson"/proteins-JC) 20-state model, mainly for tests with
/// analytically predictable behavior.
pub fn poisson_aa() -> RateMatrix {
    RateMatrix::new(20, &[1.0; 190], &[0.05; 20])
        .expect("Poisson AA parameters are static and valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::DiscreteGamma;
    use crate::subst::SubstModel;

    #[test]
    fn synthetic_is_deterministic() {
        let a = synthetic_aa(7).unwrap();
        let b = synthetic_aa(7).unwrap();
        assert_eq!(a, b);
        let c = synthetic_aa(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_frequencies_sane() {
        let rm = synthetic_aa(1).unwrap();
        let sum: f64 = rm.freqs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &f in rm.freqs() {
            assert!(f > 0.005 && f < 0.25, "freq {f}");
        }
    }

    #[test]
    fn synthetic_compiles_to_valid_model() {
        let m = SubstModel::new(&synthetic_aa(3).unwrap(), DiscreteGamma::none()).unwrap();
        assert_eq!(m.n_states(), 20);
        let mut p = vec![0.0; 400];
        m.transition_matrix(1.0, &mut p);
        for i in 0..20 {
            let s: f64 = p[i * 20..(i + 1) * 20].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn poisson_aa_symmetric_p() {
        let m = SubstModel::new(&poisson_aa(), DiscreteGamma::none()).unwrap();
        let mut p = vec![0.0; 400];
        m.transition_matrix(0.3, &mut p);
        // Uniform model: all off-diagonals equal, all diagonals equal.
        let diag = p[0];
        let off = p[1];
        for i in 0..20 {
            for j in 0..20 {
                let expect = if i == j { diag } else { off };
                assert!((p[i * 20 + j] - expect).abs() < 1e-10);
            }
        }
        assert!(diag > off);
    }
}
