//! Special functions needed by the Γ rate-heterogeneity model.
//!
//! Implemented from first principles (Lanczos approximation, power series,
//! and continued fractions) so the workspace carries no numerics
//! dependency. Accuracy targets are ~1e-12 relative error over the
//! parameter ranges phylogenetics uses (`0.01 ≤ α ≤ 100`).

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from Lanczos (1964) as popularized by Numerical Recipes
    // and Boost; relative error < 1e-13 on the positive axis.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the power series for `x < a + 1` and the continued fraction for the
/// complement otherwise (the classic `gser`/`gcf` split).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    // Modified Lentz's method for the continued fraction.
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Quantile of the standard normal distribution (inverse Φ), via the
/// Acklam rational approximation refined with one Halley step. Max
/// absolute error ≲ 1e-15 after refinement.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires 0 < p < 1, got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile of the Gamma(shape `a`, rate 1) distribution: the `x` with
/// `P(a, x) = p`.
///
/// Newton iterations on `t = ln x` (so quantiles spanning hundreds of
/// orders of magnitude — small shapes produce `x ~ 1e-40` — converge in a
/// handful of steps), safeguarded by a log-space bisection bracket. The
/// initial guess combines Wilson–Hilferty with the exact small-`x`
/// expansion `P(a, x) ≈ x^a / (a Γ(a))`.
pub fn gamma_quantile(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "gamma_quantile requires a > 0, got {a}");
    assert!((0.0..1.0).contains(&p), "gamma_quantile requires 0 <= p < 1, got {p}");
    if p == 0.0 {
        return 0.0;
    }
    let ln_norm = ln_gamma(a);
    // Initial guess in log space.
    let z = normal_quantile(p);
    let c = 1.0 / (9.0 * a);
    let wh = a * (1.0 - c + z * c.sqrt()).powi(3);
    let mut t = if wh.is_finite() && wh > 0.0 && a >= 0.5 {
        wh.ln()
    } else {
        // Small-shape branch: invert the leading term of the series,
        // x ≈ (p · a · Γ(a))^{1/a}.
        (p.ln() + a.ln() + ln_norm) / a
    };
    // Log-space bracket.
    let (mut lo, mut hi) = (-800.0f64, 710.0f64);
    for _ in 0..200 {
        let x = t.exp();
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = t;
        } else {
            lo = t;
        }
        if f.abs() < 1e-15 {
            break;
        }
        // d/dt P(a, e^t) = pdf(e^t) · e^t  =  exp(a·t − e^t − lnΓ(a)).
        let ln_deriv = a * t - x - ln_norm;
        let next = if ln_deriv > -745.0 { t - f / ln_deriv.exp() } else { f64::NAN };
        t = if next.is_finite() && next > lo && next < hi { next } else { 0.5 * (lo + hi) };
        if hi - lo < 1e-15 {
            break;
        }
    }
    t.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            close(ln_gamma(i as f64 + 1.0), f.ln(), 1e-13);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.1, 0.7, 2.3, 9.9, 55.5] {
            close(ln_gamma(x + 1.0), ln_gamma(x) + f64::ln(x), 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF)
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0, large-x limit = 1
        assert_eq!(gamma_p(2.5, 0.0), 0.0);
        close(gamma_p(2.5, 100.0), 1.0, 1e-12);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.3, 1.0, 2.7, 15.0] {
            for &x in &[0.05, 0.9, 3.3, 20.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_chi2_value() {
        // χ²(k=2) CDF at x: P(1, x/2); at x = 2·ln(4), CDF = 0.75.
        let x = 2.0 * f64::ln(4.0);
        close(gamma_p(1.0, x / 2.0), 0.75, 1e-12);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.4] {
            close(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
        }
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_known() {
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-8);
        close(normal_quantile(0.841_344_746_068_542_9), 1.0, 1e-7);
    }

    #[test]
    fn gamma_quantile_round_trip() {
        for &a in &[0.05, 0.3, 1.0, 2.0, 7.7, 42.0] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = gamma_quantile(a, p);
                close(gamma_p(a, x), p, 1e-10);
            }
        }
    }

    #[test]
    fn gamma_quantile_exponential() {
        // Gamma(1,1) quantile = -ln(1-p)
        for &p in &[0.1, 0.5, 0.9] {
            close(gamma_quantile(1.0, p), -f64::ln(1.0 - p), 1e-10);
        }
    }

    #[test]
    fn gamma_quantile_monotone() {
        let a = 0.5;
        let mut last = 0.0;
        for i in 1..100 {
            let x = gamma_quantile(a, i as f64 / 100.0);
            assert!(x > last);
            last = x;
        }
    }
}
