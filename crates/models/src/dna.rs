//! Nucleotide substitution models: JC69, K80, HKY85, GTR.
//!
//! State order is `A, C, G, T` (matching the DNA [`Alphabet`] in
//! `phylo-seq`); the six GTR exchangeabilities are given in the standard
//! order `AC, AG, AT, CG, CT, GT`.
//!
//! [`Alphabet`]: phylo_seq::Alphabet

use crate::error::ModelError;
use crate::subst::RateMatrix;

/// Jukes–Cantor 1969: equal rates, equal frequencies.
pub fn jc69() -> RateMatrix {
    RateMatrix::new(4, &[1.0; 6], &[0.25; 4]).expect("JC69 parameters are static and valid")
}

/// Kimura 1980: transition/transversion ratio `kappa`, equal frequencies.
///
/// Transitions are `A↔G` and `C↔T`.
pub fn k80(kappa: f64) -> Result<RateMatrix, ModelError> {
    if !(kappa.is_finite() && kappa > 0.0) {
        return Err(ModelError::BadParameter(format!("kappa must be positive, got {kappa}")));
    }
    //            AC   AG     AT   CG   CT     GT
    RateMatrix::new(4, &[1.0, kappa, 1.0, 1.0, kappa, 1.0], &[0.25; 4])
}

/// Hasegawa–Kishino–Yano 1985: `kappa` plus empirical frequencies.
pub fn hky(kappa: f64, freqs: &[f64; 4]) -> Result<RateMatrix, ModelError> {
    if !(kappa.is_finite() && kappa > 0.0) {
        return Err(ModelError::BadParameter(format!("kappa must be positive, got {kappa}")));
    }
    RateMatrix::new(4, &[1.0, kappa, 1.0, 1.0, kappa, 1.0], freqs)
}

/// General time-reversible model with six exchangeabilities
/// (`AC, AG, AT, CG, CT, GT`) and four frequencies.
pub fn gtr(exch: &[f64; 6], freqs: &[f64; 4]) -> Result<RateMatrix, ModelError> {
    RateMatrix::new(4, exch, freqs)
}

/// The analytic JC69 transition probability: `P(same | t)` and
/// `P(different | t)`. Used as a golden reference for the eigen path.
pub fn jc69_analytic(t: f64) -> (f64, f64) {
    let e = (-4.0 * t / 3.0).exp();
    (0.25 + 0.75 * e, 0.25 - 0.25 * e)
}

/// Estimates stationary state frequencies from observed character counts
/// (the "+F" convention): ambiguity codes spread their mass uniformly over
/// their compatible states; a +1 pseudocount per state keeps every
/// frequency positive.
pub fn empirical_freqs(
    alphabet: &phylo_seq::Alphabet,
    rows: impl Iterator<Item = impl AsRef<[u8]>>,
) -> Vec<f64> {
    let states = alphabet.states();
    let mut counts = vec![1.0f64; states];
    for row in rows {
        for &code in row.as_ref() {
            let mask = alphabet.state_mask(code);
            let k = mask.count_ones();
            if k == 0 || k as usize == states {
                continue; // gaps/unknowns carry no signal
            }
            let share = 1.0 / k as f64;
            for (i, c) in counts.iter_mut().enumerate() {
                if (mask >> i) & 1 == 1 {
                    *c += share;
                }
            }
        }
    }
    let total: f64 = counts.iter().sum();
    counts.iter().map(|&c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::DiscreteGamma;
    use crate::subst::SubstModel;

    #[test]
    fn k80_rejects_bad_kappa() {
        assert!(k80(0.0).is_err());
        assert!(k80(-2.0).is_err());
        assert!(k80(f64::INFINITY).is_err());
        assert!(k80(2.0).is_ok());
    }

    #[test]
    fn k80_transition_bias() {
        // With kappa >> 1 transitions (A->G) dominate transversions (A->C).
        let m = SubstModel::new(&k80(10.0).unwrap(), DiscreteGamma::none()).unwrap();
        let mut p = vec![0.0; 16];
        m.transition_matrix(0.1, &mut p);
        let a_g = p[2]; // A->G
        let a_c = p[1]; // A->C
        assert!(a_g > 3.0 * a_c, "A->G {a_g} vs A->C {a_c}");
    }

    #[test]
    fn hky_stationary_freqs() {
        let freqs = [0.1, 0.2, 0.3, 0.4];
        let m = SubstModel::new(&hky(4.0, &freqs).unwrap(), DiscreteGamma::none()).unwrap();
        let mut p = vec![0.0; 16];
        m.transition_matrix(50.0, &mut p);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[i * 4 + j] - freqs[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gtr_reduces_to_jc() {
        let m_gtr =
            SubstModel::new(&gtr(&[1.0; 6], &[0.25; 4]).unwrap(), DiscreteGamma::none()).unwrap();
        let m_jc = SubstModel::new(&jc69(), DiscreteGamma::none()).unwrap();
        let mut p1 = vec![0.0; 16];
        let mut p2 = vec![0.0; 16];
        m_gtr.transition_matrix(0.37, &mut p1);
        m_jc.transition_matrix(0.37, &mut p2);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_freqs_count_correctly() {
        let a = phylo_seq::alphabet::dna();
        // 3×A, 1×C, 1×R (A|G split .5/.5), gaps ignored.
        let rows = vec![vec![0u8, 0, 0, 1], vec![a.encode(b'R').unwrap(), a.unknown_code()]];
        let f = empirical_freqs(a, rows.iter());
        // counts: A=1+3.5, C=1+1, G=1+0.5, T=1; total 9
        assert!((f[0] - 4.5 / 9.0).abs() < 1e-12);
        assert!((f[1] - 2.0 / 9.0).abs() < 1e-12);
        assert!((f[2] - 1.5 / 9.0).abs() < 1e-12);
        assert!((f[3] - 1.0 / 9.0).abs() < 1e-12);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_freqs_all_gaps_is_uniform() {
        let a = phylo_seq::alphabet::dna();
        let rows = vec![vec![a.unknown_code(); 5]];
        let f = empirical_freqs(a, rows.iter());
        for &x in &f {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn analytic_helper_consistent() {
        let (same, diff) = jc69_analytic(0.4);
        assert!((same + 3.0 * diff - 1.0).abs() < 1e-12);
        assert!(same > diff);
        let (s0, d0) = jc69_analytic(0.0);
        assert_eq!(s0, 1.0);
        assert_eq!(d0, 0.0);
    }
}
