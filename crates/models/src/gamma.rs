//! Discrete Γ rate heterogeneity (Yang 1994).
//!
//! Sites evolve at different speeds; the standard model draws a per-site
//! rate from a Gamma(α, α) distribution (mean 1) discretized into `k`
//! equal-probability categories. Every CLV then stores `k` conditional
//! likelihood blocks per site — which is exactly why Γ models inflate the
//! memory footprint the paper is fighting (§I).

use crate::error::ModelError;
use crate::numerics::{gamma_p, gamma_quantile};

/// How each category's representative rate is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GammaMode {
    /// Mean of the Gamma density over the category interval (Yang's
    /// preferred method; keeps the mixture mean exactly 1).
    #[default]
    Mean,
    /// Median of the category interval (cheaper, slightly biased; rates are
    /// rescaled to mean 1 afterwards).
    Median,
}

/// A discretized Gamma(α, α) rate mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteGamma {
    alpha: f64,
    rates: Vec<f64>,
    weights: Vec<f64>,
}

impl DiscreteGamma {
    /// Discretizes Gamma(α, α) into `categories` equal-probability bins.
    pub fn new(alpha: f64, categories: usize, mode: GammaMode) -> Result<Self, ModelError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(ModelError::BadParameter(format!(
                "gamma shape alpha must be positive, got {alpha}"
            )));
        }
        if categories == 0 {
            return Err(ModelError::BadParameter("at least one rate category required".into()));
        }
        let k = categories;
        if k == 1 {
            return Ok(DiscreteGamma { alpha, rates: vec![1.0], weights: vec![1.0] });
        }
        let mut rates = Vec::with_capacity(k);
        match mode {
            GammaMode::Mean => {
                // Category boundaries are quantiles of Gamma(α, rate α);
                // with rate β the quantile of Gamma(α, β) is q/β where q is
                // the Gamma(α, 1) quantile.
                let mut bounds = Vec::with_capacity(k + 1);
                bounds.push(0.0);
                for i in 1..k {
                    bounds.push(gamma_quantile(alpha, i as f64 / k as f64) / alpha);
                }
                bounds.push(f64::INFINITY);
                // Mean rate in [a, b] of Gamma(α, α), renormalized by the
                // category probability 1/k:
                //   k · [P(α+1, bα) − P(α+1, aα)]
                // using E[X · 1{X≤t}] = (α/β) P(α+1, βt).
                for i in 0..k {
                    let lo = bounds[i] * alpha;
                    let hi = bounds[i + 1] * alpha;
                    let upper = if hi.is_finite() { gamma_p(alpha + 1.0, hi) } else { 1.0 };
                    let lower = if lo > 0.0 { gamma_p(alpha + 1.0, lo) } else { 0.0 };
                    rates.push(k as f64 * (upper - lower));
                }
            }
            GammaMode::Median => {
                for i in 0..k {
                    let p = (2.0 * i as f64 + 1.0) / (2.0 * k as f64);
                    rates.push(gamma_quantile(alpha, p) / alpha);
                }
                // Rescale medians so the mixture mean is exactly 1.
                let mean: f64 = rates.iter().sum::<f64>() / k as f64;
                for r in &mut rates {
                    *r /= mean;
                }
            }
        }
        let weights = vec![1.0 / k as f64; k];
        Ok(DiscreteGamma { alpha, rates, weights })
    }

    /// A single-category (rate-homogeneous) mixture.
    pub fn none() -> Self {
        DiscreteGamma { alpha: f64::INFINITY, rates: vec![1.0], weights: vec![1.0] }
    }

    /// The shape parameter α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of rate categories.
    #[inline]
    pub fn n_categories(&self) -> usize {
        self.rates.len()
    }

    /// The representative rate of each category (mixture mean 1).
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The mixture weights (uniform `1/k`).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_category_is_unit_rate() {
        let g = DiscreteGamma::new(0.5, 1, GammaMode::Mean).unwrap();
        assert_eq!(g.rates(), &[1.0]);
        assert_eq!(g.weights(), &[1.0]);
    }

    #[test]
    fn mean_method_has_unit_mean() {
        for &alpha in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            for &k in &[2usize, 4, 8] {
                let g = DiscreteGamma::new(alpha, k, GammaMode::Mean).unwrap();
                let mean: f64 = g.rates().iter().zip(g.weights()).map(|(r, w)| r * w).sum();
                assert!((mean - 1.0).abs() < 1e-9, "alpha={alpha} k={k} mean={mean}");
            }
        }
    }

    #[test]
    fn median_method_has_unit_mean_after_rescale() {
        let g = DiscreteGamma::new(0.7, 4, GammaMode::Median).unwrap();
        let mean: f64 = g.rates().iter().zip(g.weights()).map(|(r, w)| r * w).sum();
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rates_increase_across_categories() {
        let g = DiscreteGamma::new(0.5, 4, GammaMode::Mean).unwrap();
        for w in g.rates().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn small_alpha_is_highly_skewed() {
        // With α = 0.1 nearly all mass is at very low rates; the top
        // category must be far above the mean.
        let g = DiscreteGamma::new(0.1, 4, GammaMode::Mean).unwrap();
        assert!(g.rates()[0] < 1e-3);
        assert!(g.rates()[3] > 2.0);
    }

    #[test]
    fn large_alpha_approaches_homogeneous() {
        let g = DiscreteGamma::new(200.0, 4, GammaMode::Mean).unwrap();
        for &r in g.rates() {
            assert!((r - 1.0).abs() < 0.2, "rate {r}");
        }
    }

    #[test]
    fn yang_1994_reference_rates() {
        // Classic reference point: α = 0.5, k = 4, mean method.
        // Values reproduced by PAML/RAxML: ≈ [0.0334, 0.2519, 0.8203, 2.8944]
        let g = DiscreteGamma::new(0.5, 4, GammaMode::Mean).unwrap();
        let expect = [0.033388, 0.251916, 0.820268, 2.894428];
        for (r, e) in g.rates().iter().zip(expect) {
            assert!((r - e).abs() < 1e-3, "rate {r} vs reference {e}");
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(DiscreteGamma::new(0.0, 4, GammaMode::Mean).is_err());
        assert!(DiscreteGamma::new(-1.0, 4, GammaMode::Mean).is_err());
        assert!(DiscreteGamma::new(f64::NAN, 4, GammaMode::Mean).is_err());
        assert!(DiscreteGamma::new(0.5, 0, GammaMode::Mean).is_err());
    }
}
