//! Small dense matrices and a Jacobi eigensolver.
//!
//! Substitution models are 4×4 or 20×20, so a cyclic Jacobi sweep — simple,
//! branch-predictable, and accurate to machine precision for symmetric
//! matrices — beats pulling in a general-purpose linear-algebra crate.

use crate::error::ModelError;

/// A square row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// A zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix { n, data: vec![0.0; n * n] }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps existing row-major data.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Result<Self, ModelError> {
        if data.len() != n * n {
            return Err(ModelError::Dimension { expected: n * n, found: data.len() });
        }
        Ok(SquareMatrix { n, data })
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// `self · other`.
    pub fn mul(&self, other: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> SquareMatrix {
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute off-diagonal element.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// True if `self` is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Eigendecomposition of a symmetric matrix: `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as *columns* of `V`.
    pub vectors: SquareMatrix,
}

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Converges quadratically; for the 4–20 dimensional matrices used here a
/// handful of sweeps reaches machine precision.
pub fn symmetric_eigen(a: &SquareMatrix) -> Result<SymmetricEigen, ModelError> {
    if !a.is_symmetric(1e-9) {
        return Err(ModelError::EigenFailure("matrix is not symmetric".into()));
    }
    let n = a.n();
    let mut a = a.clone();
    let mut v = SquareMatrix::identity(n);
    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let off = a.max_off_diagonal();
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Rotation angle zeroing a[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if a.max_off_diagonal() > 1e-8 {
        return Err(ModelError::EigenFailure(format!(
            "Jacobi did not converge: residual {}",
            a.max_off_diagonal()
        )));
    }
    // Extract and sort ascending by eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = SquareMatrix::zeros(n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for k in 0..n {
            vectors[(k, new_col)] = v[(k, old_col)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_eigen() {
        let e = symmetric_eigen(&SquareMatrix::identity(4)).unwrap();
        for &v in &e.values {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = SquareMatrix::from_vec(2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&m).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        // Random-ish symmetric 5x5; A must equal V diag(λ) Vᵀ.
        let n = 5;
        let mut m = SquareMatrix::zeros(n);
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let x = next();
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        let e = symmetric_eigen(&m).unwrap();
        let mut lam = SquareMatrix::zeros(n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.mul(&lam).mul(&e.vectors.transpose());
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let m =
            SquareMatrix::from_vec(3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let e = symmetric_eigen(&m).unwrap();
        let vtv = e.vectors.transpose().mul(&e.vectors);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_asymmetric() {
        let m = SquareMatrix::from_vec(2, vec![1.0, 2.0, 0.0, 1.0]).unwrap();
        assert!(symmetric_eigen(&m).is_err());
    }

    #[test]
    fn matrix_ops() {
        let a = SquareMatrix::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = SquareMatrix::identity(2);
        assert_eq!(a.mul(&i), a);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
        assert_eq!(at[(1, 0)], 2.0);
    }

    #[test]
    fn dimension_check() {
        assert!(SquareMatrix::from_vec(3, vec![0.0; 8]).is_err());
    }
}
