//! Compiled substitution models: from rate matrix to `P(t)`.
//!
//! All standard models of sequence evolution are time-reversible: the rate
//! matrix factors as `Q = S · diag(π)` with a symmetric exchangeability
//! matrix `S` and stationary frequencies `π`. Reversibility lets us
//! symmetrize `Q` with `B = D Q D⁻¹`, `D = diag(√π)`, eigendecompose `B`
//! with the rock-solid Jacobi solver, and evaluate
//! `P(t) = D⁻¹ U e^{Λt} Uᵀ D` for any branch length — the workhorse of
//! every CLV update.

use crate::error::ModelError;
use crate::gamma::DiscreteGamma;
use crate::linalg::{symmetric_eigen, SquareMatrix};

/// A time-reversible rate matrix in exchangeability/frequency form.
#[derive(Debug, Clone, PartialEq)]
pub struct RateMatrix {
    n: usize,
    /// Symmetric exchangeabilities, row-major `n × n`, zero diagonal.
    exch: Vec<f64>,
    /// Stationary state frequencies (positive, summing to one).
    freqs: Vec<f64>,
}

impl RateMatrix {
    /// Builds a rate matrix from the upper-triangle exchangeabilities
    /// (`n(n−1)/2` values, row by row) and the stationary frequencies.
    pub fn new(n: usize, upper_exch: &[f64], freqs: &[f64]) -> Result<Self, ModelError> {
        let expected = n * (n - 1) / 2;
        if upper_exch.len() != expected {
            return Err(ModelError::Dimension { expected, found: upper_exch.len() });
        }
        if freqs.len() != n {
            return Err(ModelError::Dimension { expected: n, found: freqs.len() });
        }
        for &s in upper_exch {
            if !(s.is_finite() && s >= 0.0) {
                return Err(ModelError::BadParameter(format!("exchangeability {s} out of range")));
            }
        }
        let sum: f64 = freqs.iter().sum();
        if freqs.iter().any(|&f| !(f.is_finite() && f > 0.0)) || (sum - 1.0).abs() > 1e-6 {
            return Err(ModelError::BadFrequencies(format!(
                "frequencies must be positive and sum to 1 (sum = {sum})"
            )));
        }
        // Renormalize exactly.
        let freqs: Vec<f64> = freqs.iter().map(|&f| f / sum).collect();
        let mut exch = vec![0.0; n * n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                exch[i * n + j] = upper_exch[k];
                exch[j * n + i] = upper_exch[k];
                k += 1;
            }
        }
        Ok(RateMatrix { n, exch, freqs })
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Stationary frequencies.
    #[inline]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The normalized instantaneous rate matrix `Q` (rows sum to zero,
    /// expected rate `−Σ πᵢ qᵢᵢ = 1`).
    pub fn q_matrix(&self) -> SquareMatrix {
        let n = self.n;
        let mut q = SquareMatrix::zeros(n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = self.exch[i * n + j] * self.freqs[j];
                    q[(i, j)] = v;
                    row_sum += v;
                }
            }
            q[(i, i)] = -row_sum;
        }
        // Normalize to one expected substitution per unit branch length.
        let mu: f64 = (0..n).map(|i| -self.freqs[i] * q[(i, i)]).sum();
        if mu > 0.0 {
            for v in q.as_mut_slice() {
                *v /= mu;
            }
        }
        q
    }
}

/// A substitution model compiled for fast `P(t)` evaluation, together with
/// its Γ rate mixture.
#[derive(Debug, Clone)]
pub struct SubstModel {
    n: usize,
    freqs: Vec<f64>,
    /// Eigenvalues of the normalized `Q` (all ≤ 0; one is exactly 0).
    eigenvalues: Vec<f64>,
    /// `V = D⁻¹ U`, row-major.
    v: SquareMatrix,
    /// `W = Uᵀ D`, row-major.
    w: SquareMatrix,
    gamma: DiscreteGamma,
}

impl SubstModel {
    /// Compiles a rate matrix with the given rate mixture.
    pub fn new(rate_matrix: &RateMatrix, gamma: DiscreteGamma) -> Result<Self, ModelError> {
        let n = rate_matrix.n_states();
        let q = rate_matrix.q_matrix();
        let freqs = rate_matrix.freqs().to_vec();
        // Symmetrize: B = D Q D⁻¹ with D = diag(√π).
        let sqrt: Vec<f64> = freqs.iter().map(|&f| f.sqrt()).collect();
        let mut b = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = q[(i, j)] * sqrt[i] / sqrt[j];
            }
        }
        // Numerical symmetrization guards against rounding.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (b[(i, j)] + b[(j, i)]);
                b[(i, j)] = avg;
                b[(j, i)] = avg;
            }
        }
        let eig = symmetric_eigen(&b)?;
        let mut v = SquareMatrix::zeros(n);
        let mut w = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                v[(i, k)] = eig.vectors[(i, k)] / sqrt[i];
                w[(k, i)] = eig.vectors[(i, k)] * sqrt[i];
            }
        }
        Ok(SubstModel { n, freqs, eigenvalues: eig.values, v, w, gamma })
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Stationary frequencies.
    #[inline]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The Γ rate mixture.
    #[inline]
    pub fn gamma(&self) -> &DiscreteGamma {
        &self.gamma
    }

    /// Number of rate categories.
    #[inline]
    pub fn n_rates(&self) -> usize {
        self.gamma.n_categories()
    }

    /// Writes the transition probability matrix `P(t)` into `out`
    /// (row-major `n × n`). Negative rounding residue is clamped to zero.
    pub fn transition_matrix(&self, t: f64, out: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(out.len(), n * n);
        debug_assert!(t >= 0.0 && t.is_finite(), "bad branch length {t}");
        // exp(λ_k t)
        let mut expl = [0.0f64; 32];
        let expl = &mut expl[..n.min(32)];
        if n <= 32 {
            for (k, e) in expl.iter_mut().enumerate() {
                *e = (self.eigenvalues[k] * t).exp();
            }
            for i in 0..n {
                let vrow = self.v.row(i);
                for j in 0..n {
                    let mut p = 0.0;
                    for k in 0..n {
                        p += vrow[k] * expl[k] * self.w[(k, j)];
                    }
                    out[i * n + j] = p.max(0.0);
                }
            }
        } else {
            let expl: Vec<f64> = self.eigenvalues.iter().map(|&l| (l * t).exp()).collect();
            for i in 0..n {
                let vrow = self.v.row(i);
                for j in 0..n {
                    let mut p = 0.0;
                    for k in 0..n {
                        p += vrow[k] * expl[k] * self.w[(k, j)];
                    }
                    out[i * n + j] = p.max(0.0);
                }
            }
        }
    }

    /// Writes one `P(len · rate_c)` block per rate category into `out`
    /// (layout `[category][i][j]`, total `n_rates · n · n`).
    pub fn transition_matrices(&self, branch_len: f64, out: &mut [f64]) {
        let n2 = self.n * self.n;
        debug_assert_eq!(out.len(), self.n_rates() * n2);
        for (c, &rate) in self.gamma.rates().iter().enumerate() {
            self.transition_matrix(branch_len * rate, &mut out[c * n2..(c + 1) * n2]);
        }
    }

    /// Bytes needed for the per-edge probability matrix block.
    pub fn pmatrix_bytes(&self) -> usize {
        self.n_rates() * self.n * self.n * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna;
    use crate::gamma::GammaMode;

    fn jc() -> SubstModel {
        SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap()
    }

    #[test]
    fn p_zero_is_identity() {
        let m = jc();
        let mut p = vec![0.0; 16];
        m.transition_matrix(0.0, &mut p);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[i * 4 + j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rows_sum_to_one() {
        let m = jc();
        let mut p = vec![0.0; 16];
        for &t in &[0.01, 0.1, 1.0, 5.0] {
            m.transition_matrix(t, &mut p);
            for i in 0..4 {
                let s: f64 = p[i * 4..(i + 1) * 4].iter().sum();
                assert!((s - 1.0).abs() < 1e-10, "t={t} row={i} sum={s}");
            }
        }
    }

    #[test]
    fn jc69_matches_analytic() {
        let m = jc();
        let mut p = vec![0.0; 16];
        for &t in &[0.0, 0.05, 0.3, 1.0, 2.5] {
            m.transition_matrix(t, &mut p);
            let same = 0.25 + 0.75 * (-4.0 * t / 3.0f64).exp();
            let diff = 0.25 - 0.25 * (-4.0 * t / 3.0f64).exp();
            for i in 0..4 {
                for j in 0..4 {
                    let expect = if i == j { same } else { diff };
                    assert!(
                        (p[i * 4 + j] - expect).abs() < 1e-10,
                        "t={t} P[{i},{j}]={} expect {expect}",
                        p[i * 4 + j]
                    );
                }
            }
        }
    }

    #[test]
    fn long_branch_reaches_stationarity() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let m = SubstModel::new(
            &dna::gtr(&[1.0, 2.0, 1.5, 0.8, 3.0, 1.0], &freqs).unwrap(),
            DiscreteGamma::none(),
        )
        .unwrap();
        let mut p = vec![0.0; 16];
        m.transition_matrix(100.0, &mut p);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[i * 4 + j] - freqs[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn detailed_balance() {
        // Reversibility: π_i P_ij(t) = π_j P_ji(t).
        let freqs = [0.35, 0.15, 0.25, 0.25];
        let m = SubstModel::new(
            &dna::gtr(&[0.5, 2.0, 1.0, 1.3, 4.0, 1.0], &freqs).unwrap(),
            DiscreteGamma::none(),
        )
        .unwrap();
        let mut p = vec![0.0; 16];
        m.transition_matrix(0.7, &mut p);
        for i in 0..4 {
            for j in 0..4 {
                let lhs = freqs[i] * p[i * 4 + j];
                let rhs = freqs[j] * p[j * 4 + i];
                assert!((lhs - rhs).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s+t) = P(s) · P(t).
        let m = jc();
        let (s, t) = (0.3, 0.5);
        let mut ps = vec![0.0; 16];
        let mut pt = vec![0.0; 16];
        let mut pst = vec![0.0; 16];
        m.transition_matrix(s, &mut ps);
        m.transition_matrix(t, &mut pt);
        m.transition_matrix(s + t, &mut pst);
        for i in 0..4 {
            for j in 0..4 {
                let mut prod = 0.0;
                for k in 0..4 {
                    prod += ps[i * 4 + k] * pt[k * 4 + j];
                }
                assert!((prod - pst[i * 4 + j]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gamma_categories_scale_time() {
        let gamma = DiscreteGamma::new(0.5, 4, GammaMode::Mean).unwrap();
        let rates = gamma.rates().to_vec();
        let m = SubstModel::new(&dna::jc69(), gamma).unwrap();
        let len = 0.4;
        let mut all = vec![0.0; 4 * 16];
        m.transition_matrices(len, &mut all);
        let mut single = vec![0.0; 16];
        for (c, &r) in rates.iter().enumerate() {
            m.transition_matrix(len * r, &mut single);
            assert_eq!(&all[c * 16..(c + 1) * 16], single.as_slice());
        }
    }

    #[test]
    fn rate_matrix_validation() {
        assert!(RateMatrix::new(4, &[1.0; 5], &[0.25; 4]).is_err()); // wrong exch count
        assert!(RateMatrix::new(4, &[1.0; 6], &[0.3; 4]).is_err()); // freqs don't sum to 1
        assert!(RateMatrix::new(4, &[1.0; 6], &[0.5, 0.5, 0.1, -0.1]).is_err());
        assert!(RateMatrix::new(4, &[1.0, -1.0, 1.0, 1.0, 1.0, 1.0], &[0.25; 4]).is_err());
    }

    #[test]
    fn q_matrix_properties() {
        let rm = dna::gtr(&[1.0, 2.0, 1.5, 0.8, 3.0, 1.0], &[0.4, 0.3, 0.2, 0.1]).unwrap();
        let q = rm.q_matrix();
        // Rows sum to zero.
        for i in 0..4 {
            let s: f64 = q.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
        // Expected rate is one.
        let mu: f64 = (0..4).map(|i| -rm.freqs()[i] * q[(i, i)]).sum();
        assert!((mu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn protein_model_p_matrix_valid() {
        let rm = crate::aa::synthetic_aa(42).unwrap();
        let m = SubstModel::new(&rm, DiscreteGamma::none()).unwrap();
        let mut p = vec![0.0; 400];
        m.transition_matrix(0.5, &mut p);
        for i in 0..20 {
            let s: f64 = p[i * 20..(i + 1) * 20].iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            for j in 0..20 {
                assert!(p[i * 20 + j] >= 0.0);
            }
        }
    }
}
