//! Ablation bench: replacement strategies under a likelihood sweep with a
//! tight slot budget. The metric that matters is wall time, which tracks
//! the recomputation count each policy induces (the paper's §VI names
//! smarter strategies as future work — this is the harness to evaluate
//! them in).

use bench::fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo_amc::StrategyKind;
use phylo_datasets::{neotrop, Scale};
use phylo_engine::loglik::tree_log_likelihood;
use phylo_engine::ManagedStore;

fn bench_strategies(c: &mut Criterion) {
    let f = fixture(neotrop(Scale::Ci));
    let slots = f.ctx.min_slots() + 4;
    let mut group = c.benchmark_group("eviction_strategy_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for kind in StrategyKind::all() {
        group.bench_function(BenchmarkId::from_parameter(kind), |b| {
            b.iter(|| {
                let mut store = ManagedStore::with_strategy(
                    &f.ctx,
                    slots,
                    kind.build(kind.needs_costs().then(|| f.ctx.cost_table())),
                )
                .unwrap();
                let mut acc = 0.0;
                for e in f.ctx.tree().all_edges() {
                    acc += tree_log_likelihood(&f.ctx, &mut store, e).unwrap();
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_slot_budgets(c: &mut Criterion) {
    // The slot-count axis: min → 2× min → full. More slots, fewer
    // recomputations, faster sweep.
    let f = fixture(neotrop(Scale::Ci));
    let mut group = c.benchmark_group("slot_budget_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let min = f.ctx.min_slots();
    for slots in [min, 2 * min, f.ctx.max_slots()] {
        group.bench_function(BenchmarkId::from_parameter(slots), |b| {
            b.iter(|| {
                let mut store =
                    ManagedStore::with_slots(&f.ctx, slots, StrategyKind::CostBased).unwrap();
                let mut acc = 0.0;
                for e in f.ctx.tree().all_edges() {
                    acc += tree_log_likelihood(&f.ctx, &mut store, e).unwrap();
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_slot_budgets);
criterion_main!(benches);
