//! Microbenchmarks of the likelihood kernels: the per-CLV cost model
//! (`patterns × rates × states²`) that every memory/runtime trade-off in
//! the paper is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phylo_kernel::kernels::{update_partials, Side};
use phylo_kernel::likelihood::edge_log_likelihood;
use phylo_kernel::sitepar::update_partials_par;
use phylo_kernel::{reference, KernelScratch, Layout, TierChoice, TipTable};
use phylo_models::gamma::GammaMode;
use phylo_models::{aa, dna, DiscreteGamma, SubstModel};

struct KernelSetup {
    layout: Layout,
    pmatrix: Vec<f64>,
    table: TipTable,
    codes: Vec<u8>,
    clv: Vec<f64>,
    freqs: Vec<f64>,
    rate_weights: Vec<f64>,
    pattern_weights: Vec<u32>,
}

fn setup(patterns: usize, rates: usize, protein: bool) -> KernelSetup {
    let (model, masks) = if protein {
        let gamma = if rates > 1 {
            DiscreteGamma::new(0.7, rates, GammaMode::Mean).unwrap()
        } else {
            DiscreteGamma::none()
        };
        let m = SubstModel::new(&aa::synthetic_aa(1).unwrap(), gamma).unwrap();
        let a = phylo_seq::alphabet::protein();
        let masks: Vec<u32> = (0..a.n_codes()).map(|c| a.state_mask(c as u8)).collect();
        (m, masks)
    } else {
        let gamma = if rates > 1 {
            DiscreteGamma::new(0.7, rates, GammaMode::Mean).unwrap()
        } else {
            DiscreteGamma::none()
        };
        let m = SubstModel::new(&dna::jc69(), gamma).unwrap();
        let a = phylo_seq::alphabet::dna();
        let masks: Vec<u32> = (0..a.n_codes()).map(|c| a.state_mask(c as u8)).collect();
        (m, masks)
    };
    let states = model.n_states();
    let layout = Layout::new(patterns, rates, states);
    let mut pmatrix = vec![0.0; layout.pmatrix_len()];
    model.transition_matrices(0.13, &mut pmatrix);
    let table = TipTable::build(&layout, &pmatrix, &masks);
    let codes: Vec<u8> = (0..patterns).map(|i| (i % states) as u8).collect();
    let clv: Vec<f64> = (0..layout.clv_len()).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
    KernelSetup {
        layout,
        pmatrix,
        table,
        codes,
        clv,
        freqs: model.freqs().to_vec(),
        rate_weights: model.gamma().weights().to_vec(),
        pattern_weights: vec![1; patterns],
    }
}

fn bench_update_partials(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_partials");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, patterns, rates, protein) in [
        ("dna-1rate", 1000usize, 1usize, false),
        ("dna-gamma4", 1000, 4, false),
        ("aa-gamma4", 250, 4, true),
    ] {
        let s = setup(patterns, rates, protein);
        group.throughput(Throughput::Elements((patterns * rates) as u64));
        let mut out = vec![0.0; s.layout.clv_len()];
        let mut scale = vec![0u32; patterns];
        group.bench_function(BenchmarkId::new("tip_inner", label), |b| {
            b.iter(|| {
                update_partials(
                    &s.layout,
                    Side::Tip { table: &s.table, codes: &s.codes },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                )
            })
        });
        group.bench_function(BenchmarkId::new("inner_inner", label), |b| {
            b.iter(|| {
                update_partials(
                    &s.layout,
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                )
            })
        });
    }
    group.finish();
}

fn bench_sitepar(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_partials_sitepar");
    // Many short samples: the round-robin period stays well under the
    // host's contention-burst timescale, so the medians see the same
    // noise distribution row-to-row.
    group.sample_size(100);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // Wide alignment (serratus-like) is where across-site parallelism
    // pays; this bench quantifies the crossover. The rows are a scaling
    // curve compared against each other, so they are sampled interleaved
    // (round-robin) rather than sequentially — host drift over the
    // group's wall-time would otherwise read as fake negative scaling.
    let s = setup(4000, 4, false);
    group.throughput(Throughput::Elements((s.layout.patterns * s.layout.rates) as u64));
    let s = &s;
    let benches = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut out = vec![0.0; s.layout.clv_len()];
            let mut scale = vec![0u32; s.layout.patterns];
            let f: Box<dyn FnMut()> = Box::new(move || {
                update_partials_par(
                    &s.layout,
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    threads,
                )
            });
            (threads.to_string(), f)
        })
        .collect();
    group.bench_comparison(benches);
    group.finish();
}

fn bench_edge_loglik(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_log_likelihood");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, patterns, rates, protein) in
        [("dna-gamma4", 1000usize, 4usize, false), ("aa-gamma4", 250, 4, true)]
    {
        let s = setup(patterns, rates, protein);
        group.throughput(Throughput::Elements(patterns as u64));
        group.bench_function(label, |b| {
            b.iter(|| {
                edge_log_likelihood(
                    &s.layout,
                    &s.clv,
                    None,
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &s.freqs,
                    &s.rate_weights,
                    &s.pattern_weights,
                    0..s.layout.patterns,
                )
            })
        });
    }
    group.finish();
}

fn bench_kernel_dispatch(c: &mut Criterion) {
    // The ISSUE acceptance comparison: the generic reference kernel
    // against the dispatch-selected specialized kernel on identical
    // inputs. `generic` and `specialized` share a group so criterion
    // reports them side by side; the DNA pair is the ≥2× target.
    let mut group = c.benchmark_group("kernel_dispatch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, patterns, rates, protein) in
        [("dna-gamma4", 1000usize, 4usize, false), ("aa-gamma4", 250, 4, true)]
    {
        let s = setup(patterns, rates, protein);
        group.throughput(Throughput::Elements((patterns * rates) as u64));
        let mut out = vec![0.0; s.layout.clv_len()];
        let mut scale = vec![0u32; patterns];
        let mut scratch = KernelScratch::for_layout(&s.layout);
        group.bench_function(BenchmarkId::new("generic", label), |b| {
            b.iter(|| {
                reference::update_partials(
                    &s.layout,
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                    &mut scratch,
                )
            })
        });
        group.bench_function(BenchmarkId::new("specialized", label), |b| {
            b.iter(|| {
                update_partials(
                    &s.layout,
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                )
            })
        });
        group.bench_function(BenchmarkId::new("generic-tip", label), |b| {
            b.iter(|| {
                reference::update_partials(
                    &s.layout,
                    Side::Tip { table: &s.table, codes: &s.codes },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                    &mut scratch,
                )
            })
        });
        group.bench_function(BenchmarkId::new("specialized-tip", label), |b| {
            b.iter(|| {
                update_partials(
                    &s.layout,
                    Side::Tip { table: &s.table, codes: &s.codes },
                    Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                    &mut out,
                    &mut scale,
                    0..s.layout.patterns,
                )
            })
        });
    }
    group.finish();
}

fn bench_kernel_tier(c: &mut Criterion) {
    // Tier-by-tier comparison on identical inputs and layouts: the
    // reference oracle, the fixed scalar kernels, and the SIMD tier
    // (AVX2 where the host supports it, portable fallback otherwise).
    // Rows share a group so `bench_smoke.sh` can print a per-tier
    // throughput line straight from the JSON export.
    let mut group = c.benchmark_group("kernel_tier");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, patterns, rates, protein) in
        [("dna-gamma4", 1000usize, 4usize, false), ("aa-gamma4", 250, 4, true)]
    {
        let s = setup(patterns, rates, protein);
        group.throughput(Throughput::Elements((patterns * rates) as u64));
        let mut out = vec![0.0; s.layout.clv_len()];
        let mut scale = vec![0u32; patterns];
        for choice in [TierChoice::Reference, TierChoice::Fixed, TierChoice::Simd] {
            let layout = s.layout.with_tier(choice);
            group.bench_function(BenchmarkId::new(layout.tier().name(), label), |b| {
                b.iter(|| {
                    update_partials(
                        &layout,
                        Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                        Side::Clv { clv: &s.clv, scale: None, pmatrix: &s.pmatrix },
                        &mut out,
                        &mut scale,
                        0..layout.patterns,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_partials,
    bench_sitepar,
    bench_edge_loglik,
    bench_kernel_dispatch,
    bench_kernel_tier
);
criterion_main!(benches);
