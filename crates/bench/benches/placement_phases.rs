//! Phase-level benchmarks of the placement pipeline: lookup-table build,
//! per-query prescore against the table, and one thorough re-score —
//! the three cost centers whose balance the paper's memory modes shift.

use bench::fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epa_place::lookup::LookupTable;
use epa_place::score::{attachment_partials, score_thorough, BranchScoreTable, ScoreScratch};
use epa_place::EpaConfig;
use phylo_datasets::{neotrop, serratus, Scale};
use phylo_engine::ManagedStore;
use phylo_tree::{DirEdgeId, EdgeId};

fn bench_lookup_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for spec in [neotrop(Scale::Ci), serratus(Scale::Ci)] {
        let f = fixture(spec);
        group.bench_function(f.spec.name, |b| {
            b.iter(|| {
                let mut store = ManagedStore::full(&f.ctx);
                criterion::black_box(
                    LookupTable::build(&f.ctx, &mut store, &EpaConfig::default()).unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_prescore(c: &mut Criterion) {
    let mut group = c.benchmark_group("prescore_per_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for spec in [neotrop(Scale::Ci), serratus(Scale::Ci)] {
        let f = fixture(spec);
        let mut store = ManagedStore::full(&f.ctx);
        let table = LookupTable::build(&f.ctx, &mut store, &EpaConfig::default()).unwrap();
        let q = &f.batch.queries()[0];
        let branches = f.ctx.tree().n_edges();
        group.throughput(Throughput::Elements(branches as u64));
        group.bench_function(BenchmarkId::new("all_branches", f.spec.name), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in f.ctx.tree().all_edges() {
                    acc += table.prescore(&f.ctx, e, &f.s2p, &q.codes);
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_thorough(c: &mut Criterion) {
    let mut group = c.benchmark_group("thorough_score");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let f = fixture(neotrop(Scale::Ci));
    let mut store = ManagedStore::full(&f.ctx);
    let e = EdgeId(0);
    let block = store.prepare(&f.ctx, &[DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)]).unwrap();
    let q = &f.batch.queries()[0];
    let mut scratch = ScoreScratch::new(&f.ctx);
    group.bench_function("one_pair_2blo", |b| {
        b.iter(|| {
            criterion::black_box(
                score_thorough(&f.ctx, &store, e, &f.s2p, &q.codes, 2, &mut scratch).unwrap(),
            )
        })
    });
    // Table build alone, for comparison (the transient no-lookup path).
    group.bench_function("branch_table_build", |b| {
        b.iter(|| {
            let partials = attachment_partials(&f.ctx, &store, e, 0.5, &mut scratch);
            criterion::black_box(BranchScoreTable::build(&f.ctx, &partials, 0.1, &mut scratch))
        })
    });
    store.release(block);
    group.finish();
}

criterion_group!(benches, bench_lookup_build, bench_prescore, bench_thorough);
criterion_main!(benches);
