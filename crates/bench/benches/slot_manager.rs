//! Microbenchmarks of the AMC slot-manager maps: the paper argues the two
//! index arrays make slot lookup "efficient" — this quantifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phylo_amc::{ClvKey, SlotManager, StrategyKind};
use phylo_tree::stats::{register_need, subtree_leaf_counts};
use phylo_tree::{generate, DirEdgeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_acquire_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_manager");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n_clvs in [1_000usize, 100_000] {
        let mut mgr = SlotManager::new(n_clvs, 64, StrategyKind::Fifo.build(None));
        for k in 0..64u32 {
            mgr.acquire(ClvKey(k)).unwrap();
        }
        group.throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::new("acquire_hit", n_clvs), |b| {
            b.iter(|| {
                for k in 0..64u32 {
                    criterion::black_box(mgr.acquire(ClvKey(k)).unwrap());
                }
            })
        });
    }
    // Miss + eviction path.
    let costs: Vec<f64> = (0..100_000).map(|i| (i % 97) as f64).collect();
    let mut mgr = SlotManager::new(100_000, 64, StrategyKind::CostBased.build(Some(costs)));
    let mut next = 0u32;
    group.bench_function("acquire_evict_cost_based", |b| {
        b.iter(|| {
            next = (next + 1) % 100_000;
            criterion::black_box(mgr.acquire(ClvKey(next)).unwrap());
        })
    });
    group.finish();
}

fn bench_ensure_resident(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensure_resident_planning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [64usize, 512, 4096] {
        let mut rng = StdRng::seed_from_u64(7);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let need = register_need(&tree);
        let costs: Vec<f64> = subtree_leaf_counts(&tree).iter().map(|&c| c as f64).collect();
        let bound = phylo_tree::stats::min_slots_bound(n);
        group.bench_function(BenchmarkId::new("min_slots_sweep", n), |b| {
            b.iter(|| {
                let mut mgr = SlotManager::new(
                    tree.n_dir_edges(),
                    bound,
                    StrategyKind::CostBased.build(Some(costs.clone())),
                );
                let mut total_ops = 0usize;
                for e in tree.all_edges().take(16) {
                    let targets = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
                    let rs = phylo_amc::ensure_resident(&tree, &targets, &mut mgr, &need).unwrap();
                    total_ops += rs.ops.len();
                    rs.release(&mut mgr);
                }
                criterion::black_box(total_ops)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_acquire_hit, bench_ensure_resident);
criterion_main!(benches);
