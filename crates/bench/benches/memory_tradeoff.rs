//! End-to-end memory/runtime trade-off (the Criterion companion of the
//! paper's Fig. 3): one full placement run per `--maxmem` operating point
//! on each dataset.

use bench::{bench_specs, fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epa_place::{memplan, EpaConfig, Placer};

fn bench_memory_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_by_budget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for spec in bench_specs() {
        let f = fixture(spec.clone());
        let base = EpaConfig { chunk_size: 8, threads: 1, ..Default::default() };
        let floor = memplan::floor_budget(&f.ctx, &base, f.batch.len(), f.batch.n_sites());
        let lookup_floor =
            memplan::lookup_floor_budget(&f.ctx, &base, f.batch.len(), f.batch.n_sites());
        drop(f);
        for (label, maxmem) in
            [("off", None), ("intermediate", Some(lookup_floor)), ("full-saving", Some(floor))]
        {
            let cfg = EpaConfig { max_memory: maxmem, ..base.clone() };
            group.bench_function(BenchmarkId::new(spec.name, label), |b| {
                b.iter_batched(
                    || fixture(spec.clone()),
                    |f| {
                        let placer = Placer::new(f.ctx, f.s2p, cfg.clone()).unwrap();
                        criterion::black_box(placer.place(&f.batch).unwrap())
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_memory_tradeoff);
criterion_main!(benches);
