//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench file covers one layer of the system:
//!
//! * `kernels` — raw CLV update and likelihood kernels (DNA vs AA, with
//!   and without Γ rates, serial vs across-site parallel);
//! * `slot_manager` — acquire/pin/evict micro-costs of the AMC maps;
//! * `eviction_strategies` — recomputation counts and wall time of the
//!   replacement policies under a likelihood sweep (the design-choice
//!   ablation the paper's §VI calls out);
//! * `placement_phases` — lookup build, prescore, and thorough phases;
//! * `memory_tradeoff` — end-to-end placement at decreasing `--maxmem`
//!   (the Criterion companion of the paper's Fig. 3).

use epa_place::QueryBatch;
use phylo_datasets::{generate, DatasetSpec, Scale};
use phylo_engine::ReferenceContext;
use phylo_seq::compress;

/// A ready-to-bench fixture: context, site map, and query batch.
pub struct Fixture {
    /// Engine context over the reference.
    pub ctx: ReferenceContext,
    /// Site → pattern map.
    pub s2p: Vec<u32>,
    /// Encoded query batch.
    pub batch: QueryBatch,
    /// The generating spec.
    pub spec: DatasetSpec,
}

/// Builds the fixture for a dataset spec.
pub fn fixture(spec: DatasetSpec) -> Fixture {
    let ds = generate(&spec);
    let patterns = compress(&ds.reference).expect("non-empty");
    let s2p = patterns.site_to_pattern().to_vec();
    let ctx = ReferenceContext::new(
        ds.tree.clone(),
        ds.model.clone(),
        ds.spec.alphabet.alphabet(),
        &patterns,
    )
    .expect("complete taxa");
    let batch = QueryBatch::new(&ds.queries, ds.reference.n_sites()).expect("aligned");
    Fixture { ctx, s2p, batch, spec }
}

/// The standard benchmark datasets (CI scale keeps `cargo bench`
/// minutes-fast; pass `--scale` through the pewo binaries for larger
/// runs).
pub fn bench_specs() -> [DatasetSpec; 3] {
    [
        phylo_datasets::neotrop(Scale::Ci),
        phylo_datasets::serratus(Scale::Ci),
        phylo_datasets::pro_ref(Scale::Ci),
    ]
}
