//! Deterministic fault injection.
//!
//! Production code threads named **probe sites** through its failure-prone
//! paths — `if phylo_faults::fire("amc::lost_publish") { return; }` — and
//! the robustness test suite **arms** those sites with a trigger to force
//! the failure at a precise, reproducible point. The subsystem has two
//! compilation modes:
//!
//! * default (no features): [`fire`] is a `#[inline(always)]` constant
//!   `false`, so every probe folds away and release binaries carry no
//!   registry, no locks, and no string comparisons;
//! * `--features inject`: probes consult a process-global registry keyed
//!   by site name. Sites are armed with a [`Trigger`] (fire once after N
//!   calls, every Nth call, or always) and report how often they fired,
//!   so tests can assert the fault actually happened.
//!
//! The registry is global state: tests that arm sites must serialize
//! (e.g. behind a `static Mutex`) and call [`reset`] when done.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// When an armed site fires.
pub enum Trigger {
    /// Fire exactly once, on the `(after + 1)`-th probe.
    Once {
        /// Probes to let pass before firing.
        after: u64,
    },
    /// Fire on every `period`-th probe (1 = every probe).
    Every {
        /// Probe interval; 0 is treated as 1.
        period: u64,
    },
    /// Fire on every probe.
    Always,
}

#[cfg(feature = "inject")]
mod registry {
    use super::Trigger;
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct Site {
        trigger: Trigger,
        calls: u64,
        hits: u64,
    }

    static REGISTRY: Mutex<Option<HashMap<String, Site>>> = Mutex::new(None);

    fn with_registry<R>(f: impl FnOnce(&mut HashMap<String, Site>) -> R) -> R {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.get_or_insert_with(HashMap::new))
    }

    pub fn fire(site: &str) -> bool {
        with_registry(|reg| {
            let Some(s) = reg.get_mut(site) else { return false };
            let call = s.calls;
            s.calls += 1;
            let hit = match s.trigger {
                Trigger::Once { after } => call == after && s.hits == 0,
                Trigger::Every { period } => call % period.max(1) == 0,
                Trigger::Always => true,
            };
            if hit {
                s.hits += 1;
            }
            hit
        })
    }

    pub fn arm(site: &str, trigger: Trigger) {
        with_registry(|reg| {
            reg.insert(site.to_string(), Site { trigger, calls: 0, hits: 0 });
        });
    }

    pub fn disarm(site: &str) {
        with_registry(|reg| {
            reg.remove(site);
        });
    }

    pub fn reset() {
        with_registry(|reg| reg.clear());
    }

    pub fn hits(site: &str) -> u64 {
        with_registry(|reg| reg.get(site).map_or(0, |s| s.hits))
    }
}

/// Probes a fault site; `true` means the caller must simulate the fault.
/// Constant `false` (and thus dead code) unless built with `inject`.
#[cfg(feature = "inject")]
#[inline]
pub fn fire(site: &str) -> bool {
    registry::fire(site)
}

/// Probes a fault site; `true` means the caller must simulate the fault.
/// Constant `false` (and thus dead code) unless built with `inject`.
#[cfg(not(feature = "inject"))]
#[inline(always)]
pub fn fire(_site: &str) -> bool {
    false
}

/// Arms `site` with a trigger (replacing any previous arming).
#[cfg(feature = "inject")]
pub fn arm(site: &str, trigger: Trigger) {
    registry::arm(site, trigger);
}

/// Arms `site` with a trigger (replacing any previous arming).
#[cfg(not(feature = "inject"))]
pub fn arm(_site: &str, _trigger: Trigger) {}

/// Disarms `site`, forgetting its counters.
#[cfg(feature = "inject")]
pub fn disarm(site: &str) {
    registry::disarm(site);
}

/// Disarms `site`, forgetting its counters.
#[cfg(not(feature = "inject"))]
pub fn disarm(_site: &str) {}

/// Disarms every site and clears all counters.
#[cfg(feature = "inject")]
pub fn reset() {
    registry::reset();
}

/// Disarms every site and clears all counters.
#[cfg(not(feature = "inject"))]
pub fn reset() {}

/// How many times `site` has fired since it was armed.
#[cfg(feature = "inject")]
pub fn hits(site: &str) -> u64 {
    registry::hits(site)
}

/// How many times `site` has fired since it was armed.
#[cfg(not(feature = "inject"))]
pub fn hits(_site: &str) -> u64 {
    0
}

/// Parses one trigger spec: `always`, `once[:after]`, or `every[:period]`
/// (`once` alone means `once:0`, `every` alone means `every:1`).
pub fn parse_trigger(spec: &str) -> Result<Trigger, String> {
    let (kind, arg) = match spec.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (spec, None),
    };
    let num = |a: Option<&str>, default: u64| -> Result<u64, String> {
        match a {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("bad trigger count {s:?} in {spec:?}")),
        }
    };
    match kind {
        "always" if arg.is_none() => Ok(Trigger::Always),
        "once" => Ok(Trigger::Once { after: num(arg, 0)? }),
        "every" => Ok(Trigger::Every { period: num(arg, 1)? }),
        _ => Err(format!("bad trigger {spec:?} (want always, once[:N], or every[:N])")),
    }
}

/// Arms sites from a comma-separated `site=trigger` spec, e.g.
/// `shard::worker_crash=once:1,journal::torn_write=every:3`. This is how
/// fault injection crosses a process boundary: a supervisor sets the
/// spec in a worker's `PHYLO_FAULTS` environment and the worker arms it
/// at startup via [`arm_from_env`]. Without the `inject` feature the
/// spec is still validated but arming is a no-op.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (site, trig) = part
            .split_once('=')
            .ok_or_else(|| format!("bad fault spec {part:?} (want site=trigger)"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("bad fault spec {part:?}: empty site name"));
        }
        arm(site, parse_trigger(trig.trim())?);
    }
    Ok(())
}

/// Arms sites from the `PHYLO_FAULTS` environment variable (absent or
/// empty means nothing is armed). A malformed spec is returned as an
/// error so binaries can refuse to run with a half-armed matrix.
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var("PHYLO_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            arm_from_spec(&spec).map_err(|e| format!("PHYLO_FAULTS: {e}"))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn triggers_parse() {
        assert_eq!(parse_trigger("always"), Ok(Trigger::Always));
        assert_eq!(parse_trigger("once"), Ok(Trigger::Once { after: 0 }));
        assert_eq!(parse_trigger("once:3"), Ok(Trigger::Once { after: 3 }));
        assert_eq!(parse_trigger("every"), Ok(Trigger::Every { period: 1 }));
        assert_eq!(parse_trigger("every:2"), Ok(Trigger::Every { period: 2 }));
        for bad in ["", "sometimes", "once:x", "every:", "always:1"] {
            assert!(parse_trigger(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn specs_validate() {
        assert!(arm_from_spec("").is_ok());
        assert!(arm_from_spec("a::b=always, c::d=once:2").is_ok());
        assert!(arm_from_spec("nosign").is_err());
        assert!(arm_from_spec("=always").is_err());
        assert!(arm_from_spec("a=never").is_err());
        reset();
    }
}

#[cfg(all(test, feature = "inject"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn arm_from_spec_arms_sites() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm_from_spec("x::one=once:1,x::two=always").unwrap();
        assert!(!fire("x::one"));
        assert!(fire("x::one"));
        assert!(!fire("x::one"));
        assert!(fire("x::two"));
        reset();
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        assert!(!fire("nope"));
        assert_eq!(hits("nope"), 0);
    }

    #[test]
    fn once_fires_exactly_once_after_n() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("s", Trigger::Once { after: 2 });
        assert!(!fire("s"));
        assert!(!fire("s"));
        assert!(fire("s"));
        assert!(!fire("s"));
        assert_eq!(hits("s"), 1);
        reset();
    }

    #[test]
    fn every_period_fires_periodically() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("p", Trigger::Every { period: 3 });
        let fired: Vec<bool> = (0..6).map(|_| fire("p")).collect();
        assert_eq!(fired, vec![true, false, false, true, false, false]);
        assert_eq!(hits("p"), 2);
        reset();
    }

    #[test]
    fn always_fires_until_disarmed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        arm("a", Trigger::Always);
        assert!(fire("a"));
        assert!(fire("a"));
        disarm("a");
        assert!(!fire("a"));
        reset();
    }
}
