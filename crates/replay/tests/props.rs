//! Property-based tests over the replay simulator: the classical
//! paging-theory facts the Belady oracle and the stack policies must
//! satisfy on *every* trace, not just hand-picked ones.
//!
//! FIFO is deliberately absent from the monotonicity property: it is
//! not a stack algorithm and exhibits Belady's anomaly (more slots can
//! mean *more* misses — the 1/2/3/4/1/2/5/1/2/3/4/5 sequence at 3 vs 4
//! frames is the textbook case), so only Belady and LRU are required
//! to improve monotonically with memory.

use phylo_replay::{simulate, Policy, SlotEvent, StrategyKind, Trace, TraceMeta};
use proptest::prelude::*;

const N_CLVS: u32 = 12;

/// Builds an acquire-only trace (with a cost table so the cost-aware
/// policies replay too) from a list of CLV indices.
fn acquire_trace(clvs: &[u32]) -> Trace {
    Trace {
        meta: TraceMeta {
            n_clvs: N_CLVS,
            costs: (0..N_CLVS).map(|c| 1.0 + c as f64).collect(),
            ..Default::default()
        },
        events: clvs.iter().map(|&clv| SlotEvent::Acquire { clv }).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The clairvoyant oracle never misses more than any implementable
    /// policy, at any slot count.
    #[test]
    fn belady_lower_bounds_every_policy(
        clvs in proptest::collection::vec(0u32..N_CLVS, 1..300),
        n_slots in 1usize..16,
    ) {
        let t = acquire_trace(&clvs);
        let oracle = simulate(&t, n_slots, Policy::Belady).unwrap();
        for kind in StrategyKind::all() {
            let s = simulate(&t, n_slots, Policy::Kind(kind)).unwrap();
            prop_assert!(
                oracle.misses <= s.misses,
                "belady {} > {kind} {} at {n_slots} slots",
                oracle.misses, s.misses
            );
            // Both replay the same demand stream.
            prop_assert_eq!(s.acquires, oracle.acquires);
            prop_assert_eq!(s.hits + s.misses, s.acquires);
            prop_assert_eq!(s.installs, s.misses);
        }
    }

    /// Stack algorithms (Belady, LRU) miss monotonically less as the
    /// slot count grows.
    #[test]
    fn stack_policies_improve_with_memory(
        clvs in proptest::collection::vec(0u32..N_CLVS, 1..300),
    ) {
        let t = acquire_trace(&clvs);
        for policy in [Policy::Belady, Policy::Kind(StrategyKind::Lru)] {
            let mut prev = u64::MAX;
            for n_slots in 1..=(N_CLVS as usize + 1) {
                let s = simulate(&t, n_slots, policy).unwrap();
                prop_assert!(
                    s.misses <= prev,
                    "{policy}: {} misses at {n_slots} slots, {prev} at {}",
                    s.misses, n_slots - 1
                );
                prev = s.misses;
            }
        }
    }

    /// With at least as many slots as distinct CLVs, every policy —
    /// oracle included — degenerates to compulsory misses only: one
    /// miss per distinct CLV, zero evictions, identical counters.
    #[test]
    fn ample_memory_makes_every_policy_identical(
        clvs in proptest::collection::vec(0u32..N_CLVS, 1..300),
        headroom in 0usize..4,
    ) {
        let t = acquire_trace(&clvs);
        let distinct = t.distinct_acquired() as u64;
        let n_slots = distinct as usize + headroom;
        for policy in Policy::all() {
            let s = simulate(&t, n_slots, policy).unwrap();
            prop_assert_eq!(s.misses, distinct, "{}", policy);
            prop_assert_eq!(s.evictions, 0, "{}", policy);
            prop_assert_eq!(s.hits, clvs.len() as u64 - distinct, "{}", policy);
        }
    }
}
