//! The trace simulator: a faithful in-memory model of the slot
//! manager's eviction table, replaying one [`SlotEvent`] at a time.
//!
//! The model mirrors `phylo_amc::slots::TableInner` exactly where it
//! matters for replacement decisions: the `slot↔clv` maps, per-slot pin
//! counts, the free list in its initial `(0..n).rev()` order (so fresh
//! slots are handed out 0, 1, 2, … just like the live manager), and the
//! strategy callbacks in the live call order (`choose_victim` →
//! `on_evict` → unmap → map → `on_insert`). Live policies are the
//! *same* trait objects the manager runs ([`StrategyKind::build`]), so
//! same-policy replay cannot drift from the live implementation.

use std::collections::VecDeque;
use std::fmt;

use phylo_amc::{ClvKey, ReplacementStrategy, SlotId, StrategyKind, VictimView};
use phylo_obs::slottrace::{SlotEvent, Trace, NO_CLV};

/// Sentinel in the simulator's `slot_to_clv` column (mirrors the live
/// manager's `FREE`).
const FREE: u32 = u32::MAX;

/// The simulated traffic counters; field-for-field comparable with the
/// live manager's `SlotStats` (which additionally tracks
/// `poisoned`/`reclaimed`, both outside the replacement model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Demand accesses that found the CLV resident.
    pub hits: u64,
    /// Demand accesses that had to (re)assign a slot.
    pub misses: u64,
    /// Victims discarded to make room (plus poison teardowns, matching
    /// the live accounting).
    pub evictions: u64,
    /// Slot (re)assignments; invariant `installs == misses`.
    pub installs: u64,
    /// All demand accesses; invariant `acquires == hits + misses`.
    pub acquires: u64,
}

impl SimStats {
    /// Miss rate over all demand accesses (0 when the trace is empty).
    pub fn miss_rate(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.misses as f64 / self.acquires as f64
        }
    }
}

/// A replayable policy: any live [`StrategyKind`], or the clairvoyant
/// Belady oracle (not implementable live — it reads the future).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// One of the live replacement strategies, replayed through the
    /// exact same implementation the manager runs.
    Kind(StrategyKind),
    /// Belady's MIN: evict the resident CLV whose next demand access is
    /// furthest in the future (never again > latest; ties broken toward
    /// the lower CLV key). Optimal among demand-fill policies, hence
    /// the oracle miss floor.
    Belady,
}

impl Policy {
    /// Parses a policy name: every live strategy name plus `belady`
    /// (alias `oracle`).
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "belady" | "oracle" => Some(Policy::Belady),
            _ => StrategyKind::parse(s).map(Policy::Kind),
        }
    }

    /// Every live policy followed by the oracle.
    pub fn all() -> Vec<Policy> {
        let mut v: Vec<Policy> = StrategyKind::all().into_iter().map(Policy::Kind).collect();
        v.push(Policy::Belady);
        v
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Kind(k) => write!(f, "{k}"),
            Policy::Belady => write!(f, "belady"),
        }
    }
}

/// Why a replay could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Every slot was pinned when a miss needed a victim: the requested
    /// slot count cannot serve the trace's pinned working set. The live
    /// run would have degraded or failed the same way.
    Stuck {
        /// Index of the offending event in the trace.
        index: usize,
        /// The CLV whose demand access could not be served.
        clv: u32,
    },
    /// The policy needs a recomputation-cost table but the trace's
    /// `#costs` line is empty/absent.
    MissingCosts(StrategyKind),
    /// The trace is structurally unusable (e.g. a demand access on the
    /// `NO_CLV` sentinel).
    BadTrace(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stuck { index, clv } => write!(
                f,
                "replay stuck at event {index}: all slots pinned while acquiring clv {clv} \
                 (slot count too small for the trace's pinned set)"
            ),
            SimError::MissingCosts(k) => {
                write!(f, "policy {k} needs a cost table but the trace has no #costs line")
            }
            SimError::BadTrace(why) => write!(f, "bad trace: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The victim chooser: a live strategy or the oracle's future index.
enum PolicyState {
    Live(Box<dyn ReplacementStrategy>),
    Belady {
        /// Per-CLV queue of *future* demand-access positions (indices
        /// into the event stream). The front is the next use; a CLV's
        /// own position is popped when its Acquire is replayed.
        next_use: Vec<VecDeque<usize>>,
    },
}

struct Sim {
    slot_to_clv: Vec<u32>,
    clv_to_slot: Vec<u32>,
    pin_counts: Vec<u32>,
    /// Poisoned slots waiting for their foreign pins to drain
    /// (fault-run traces only); mirrors the live `failed` column.
    failed: Vec<bool>,
    free: Vec<u32>,
    /// Pins recorded for CLVs that are not resident *in this replay
    /// configuration* (cross-policy replay evicts differently than the
    /// captured run). Balanced by later Unpin events so the pinned set
    /// never leaks.
    skipped_pins: Vec<u64>,
    policy: PolicyState,
    stats: SimStats,
}

impl Sim {
    fn resident(&self, clv: u32) -> Option<usize> {
        let s = self.clv_to_slot[clv as usize];
        (s != FREE).then_some(s as usize)
    }

    fn on_access(&mut self, clv: u32, slot: usize) {
        if let PolicyState::Live(s) = &mut self.policy {
            s.on_access(ClvKey(clv), SlotId(slot as u32));
        }
    }

    fn on_evict(&mut self, clv: u32, slot: usize) {
        if let PolicyState::Live(s) = &mut self.policy {
            s.on_evict(ClvKey(clv), SlotId(slot as u32));
        }
    }

    fn on_insert(&mut self, clv: u32, slot: usize) {
        if let PolicyState::Live(s) = &mut self.policy {
            s.on_insert(ClvKey(clv), SlotId(slot as u32));
        }
    }

    fn choose_victim(&mut self) -> Option<usize> {
        match &mut self.policy {
            PolicyState::Live(s) => {
                let view = VictimView::new(&self.slot_to_clv, &self.pin_counts);
                s.choose_victim(&view).map(|s| s.idx())
            }
            PolicyState::Belady { next_use } => {
                // Furthest next use wins; "never used again" sorts above
                // every finite position; ties fall to the lower CLV key.
                let mut best: Option<(usize, u64, u32)> = None; // (slot, key, clv)
                for (slot, &clv) in self.slot_to_clv.iter().enumerate() {
                    if clv == FREE || self.pin_counts[slot] > 0 {
                        continue;
                    }
                    let key = next_use[clv as usize].front().map(|&p| p as u64).unwrap_or(u64::MAX);
                    let better = match best {
                        None => true,
                        Some((_, bk, bc)) => key > bk || (key == bk && clv < bc),
                    };
                    if better {
                        best = Some((slot, key, clv));
                    }
                }
                best.map(|(slot, _, _)| slot)
            }
        }
    }

    fn unmap(&mut self, clv: u32, slot: usize) {
        self.clv_to_slot[clv as usize] = FREE;
        self.slot_to_clv[slot] = FREE;
    }

    fn map(&mut self, clv: u32, slot: usize) {
        self.clv_to_slot[clv as usize] = slot as u32;
        self.slot_to_clv[slot] = clv;
    }

    /// Lowest-index poisoned slot still draining pins, for attributing
    /// `Pin`/`Unpin` events that the live run recorded against a failed
    /// (occupant-less) slot.
    fn lowest_failed(&self) -> Option<usize> {
        self.failed.iter().position(|&f| f)
    }
}

/// A replacement decision surfaced to [`simulate_observed`] observers.
/// The tier simulator ([`crate::tiersim`]) builds on these: an `Evict`
/// is the moment a live tiered store would be offered the payload, a
/// `Miss` the moment it would be probed for a reload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A demand access missed; a (re)computation — or a tier reload —
    /// follows.
    Miss { clv: u32 },
    /// A resident CLV was discarded to make room. Only demand-path
    /// evictions are reported (poison teardowns and invalidation
    /// flushes never reach a live tiered store either).
    Evict { clv: u32 },
}

/// Replays `trace` against `policy` with `n_slots` physical slots and
/// returns the resulting traffic counters.
///
/// For the captured policy and slot count this reproduces the live
/// run's counters bit-exactly (see the crate docs for the argument);
/// for any other configuration it answers "what would the traffic have
/// been". [`SimError::Stuck`] means `n_slots` cannot serve the trace's
/// pinned set — use [`crate::min_feasible_slots`] for the floor.
pub fn simulate(trace: &Trace, n_slots: usize, policy: Policy) -> Result<SimStats, SimError> {
    simulate_observed(trace, n_slots, policy, &mut |_| {})
}

/// As [`simulate`], additionally reporting each miss and demand-path
/// eviction to `obs` in trace order.
pub fn simulate_observed(
    trace: &Trace,
    n_slots: usize,
    policy: Policy,
    obs: &mut dyn FnMut(SimEvent),
) -> Result<SimStats, SimError> {
    if n_slots == 0 {
        return Err(SimError::BadTrace("n_slots must be positive".into()));
    }
    // Size the CLV key space from the meta, stretched to cover every key
    // the event stream actually names (synthetic traces may omit meta).
    let mut n_clvs = trace.meta.n_clvs as usize;
    for ev in &trace.events {
        let clv = match *ev {
            SlotEvent::Acquire { clv }
            | SlotEvent::Touch { clv }
            | SlotEvent::Pin { clv, .. }
            | SlotEvent::Unpin { clv }
            | SlotEvent::Invalidate { clv }
            | SlotEvent::Poison { clv } => clv,
            SlotEvent::UnpinAll => NO_CLV,
        };
        if clv != NO_CLV {
            n_clvs = n_clvs.max(clv as usize + 1);
        }
    }

    let policy_state = match policy {
        Policy::Kind(kind) => {
            let costs = if kind.needs_costs() {
                if trace.meta.costs.is_empty() {
                    return Err(SimError::MissingCosts(kind));
                }
                Some(trace.meta.costs.clone())
            } else {
                None
            };
            PolicyState::Live(kind.build(costs))
        }
        Policy::Belady => {
            let mut next_use = vec![VecDeque::new(); n_clvs];
            for (i, ev) in trace.events.iter().enumerate() {
                if let SlotEvent::Acquire { clv } = *ev {
                    if clv != NO_CLV {
                        next_use[clv as usize].push_back(i);
                    }
                }
            }
            PolicyState::Belady { next_use }
        }
    };

    let mut sim = Sim {
        slot_to_clv: vec![FREE; n_slots],
        clv_to_slot: vec![FREE; n_clvs],
        pin_counts: vec![0; n_slots],
        failed: vec![false; n_slots],
        free: (0..n_slots as u32).rev().collect(),
        skipped_pins: vec![0; n_clvs],
        policy: policy_state,
        stats: SimStats::default(),
    };

    for (index, ev) in trace.events.iter().enumerate() {
        match *ev {
            SlotEvent::Acquire { clv } => {
                if clv == NO_CLV {
                    return Err(SimError::BadTrace(format!(
                        "event {index}: demand access on the NO_CLV sentinel"
                    )));
                }
                // The oracle consumes its own position first, leaving
                // the queue front pointing at the *next* future use.
                if let PolicyState::Belady { next_use } = &mut sim.policy {
                    let q = &mut next_use[clv as usize];
                    while q.front().is_some_and(|&p| p <= index) {
                        q.pop_front();
                    }
                }
                sim.stats.acquires += 1;
                if let Some(slot) = sim.resident(clv) {
                    sim.stats.hits += 1;
                    sim.on_access(clv, slot);
                    continue;
                }
                sim.stats.misses += 1;
                obs(SimEvent::Miss { clv });
                let slot = if let Some(raw) = sim.free.pop() {
                    raw as usize
                } else {
                    let Some(victim_slot) = sim.choose_victim() else {
                        return Err(SimError::Stuck { index, clv });
                    };
                    let victim = sim.slot_to_clv[victim_slot];
                    sim.stats.evictions += 1;
                    obs(SimEvent::Evict { clv: victim });
                    sim.on_evict(victim, victim_slot);
                    sim.unmap(victim, victim_slot);
                    victim_slot
                };
                sim.stats.installs += 1;
                sim.map(clv, slot);
                sim.on_insert(clv, slot);
            }
            SlotEvent::Touch { clv } => {
                if let Some(slot) = sim.resident(clv) {
                    sim.on_access(clv, slot);
                }
            }
            SlotEvent::Pin { clv, n } => {
                if clv == NO_CLV {
                    // A pin on a failed slot (fault runs): attribute it
                    // to the draining slot so its reclamation balances.
                    if let Some(slot) = sim.lowest_failed() {
                        sim.pin_counts[slot] += n;
                    }
                } else if let Some(slot) = sim.resident(clv) {
                    sim.pin_counts[slot] += n;
                } else {
                    // Not resident under *this* replay configuration:
                    // remember the pins so the matching unpins balance.
                    sim.skipped_pins[clv as usize] += n as u64;
                }
            }
            SlotEvent::Unpin { clv } => {
                if clv == NO_CLV {
                    if let Some(slot) = sim.lowest_failed() {
                        let c = &mut sim.pin_counts[slot];
                        *c = c.saturating_sub(1);
                        if *c == 0 {
                            sim.failed[slot] = false;
                            sim.free.push(slot as u32);
                        }
                    }
                } else if sim.skipped_pins[clv as usize] > 0 {
                    sim.skipped_pins[clv as usize] -= 1;
                } else if let Some(slot) = sim.resident(clv) {
                    let c = &mut sim.pin_counts[slot];
                    *c = c.saturating_sub(1);
                }
            }
            SlotEvent::UnpinAll => {
                // Mirrors the live single-owner teardown: every pin is
                // force-cleared, including remembered off-resident ones.
                for c in &mut sim.pin_counts {
                    *c = 0;
                }
                for s in &mut sim.skipped_pins {
                    *s = 0;
                }
                // Failed slots lose their last pins too — reclaim them.
                for slot in 0..sim.failed.len() {
                    if sim.failed[slot] {
                        sim.failed[slot] = false;
                        sim.free.push(slot as u32);
                    }
                }
            }
            SlotEvent::Invalidate { clv } => {
                if clv == NO_CLV {
                    continue;
                }
                if let Some(slot) = sim.resident(clv) {
                    if sim.pin_counts[slot] == 0 {
                        // Not an eviction in the live accounting either.
                        sim.on_evict(clv, slot);
                        sim.unmap(clv, slot);
                        sim.free.push(slot as u32);
                    }
                }
            }
            SlotEvent::Poison { clv } => {
                // Fault-run teardown: counted as one eviction, mapping
                // torn down, caller's pin consumed; the slot drains its
                // foreign pins before rejoining the free list.
                let slot = if clv == NO_CLV { sim.lowest_failed() } else { sim.resident(clv) };
                let Some(slot) = slot else { continue };
                if clv != NO_CLV {
                    sim.stats.evictions += 1;
                    sim.on_evict(clv, slot);
                    sim.unmap(clv, slot);
                }
                let c = &mut sim.pin_counts[slot];
                *c = c.saturating_sub(1);
                if *c == 0 {
                    sim.failed[slot] = false;
                    sim.free.push(slot as u32);
                } else {
                    sim.failed[slot] = true;
                }
            }
        }
    }
    debug_assert_eq!(sim.stats.installs, sim.stats.misses);
    debug_assert_eq!(sim.stats.acquires, sim.stats.hits + sim.stats.misses);
    Ok(sim.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_obs::slottrace::TraceMeta;

    fn acq(clv: u32) -> SlotEvent {
        SlotEvent::Acquire { clv }
    }

    fn trace(events: Vec<SlotEvent>) -> Trace {
        Trace { meta: TraceMeta::default(), events }
    }

    #[test]
    fn policy_parse_round_trip() {
        for p in Policy::all() {
            assert_eq!(Policy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(Policy::parse("oracle"), Some(Policy::Belady));
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn fifo_counts_match_hand_replay() {
        // 0 1 2 fill; 3 evicts 0; 0 evicts 1; 1 evicts 2 (FIFO order).
        let t = trace(vec![acq(0), acq(1), acq(2), acq(3), acq(0), acq(1)]);
        let s = simulate(&t, 3, Policy::Kind(StrategyKind::Fifo)).unwrap();
        assert_eq!(s, SimStats { hits: 0, misses: 6, evictions: 3, installs: 6, acquires: 6 });
    }

    #[test]
    fn lru_hits_differ_from_fifo() {
        // 0 1 0 2 0: LRU keeps 0 hot (2 hits); plenty of slots = no evict.
        let t = trace(vec![acq(0), acq(1), acq(0), acq(2), acq(0)]);
        let s = simulate(&t, 2, Policy::Kind(StrategyKind::Lru)).unwrap();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1); // 2 evicts 1 (LRU), 0 stays resident
    }

    #[test]
    fn belady_is_optimal_on_the_classic_example() {
        // The textbook sequence where LRU pays and MIN does not.
        let t = trace(vec![acq(0), acq(1), acq(2), acq(0), acq(3), acq(0), acq(1)]);
        let lru = simulate(&t, 2, Policy::Kind(StrategyKind::Lru)).unwrap();
        let min = simulate(&t, 2, Policy::Belady).unwrap();
        assert!(min.misses <= lru.misses, "oracle {min:?} vs lru {lru:?}");
        assert_eq!(min.misses, 5);
    }

    #[test]
    fn belady_never_again_beats_far_future() {
        // With 2 slots: after 0,1 the access 2 must evict. 1 is used
        // again, 0 never — the oracle must evict 0.
        let t = trace(vec![acq(0), acq(1), acq(2), acq(1)]);
        let s = simulate(&t, 2, Policy::Belady).unwrap();
        assert_eq!(s.hits, 1, "evicting 0 keeps 1's future hit");
    }

    #[test]
    fn pinned_slots_are_not_victims() {
        // Pin 0, then stream 1..4 over the other slot: 0 survives.
        let mut t = trace(vec![
            acq(0),
            SlotEvent::Pin { clv: 0, n: 1 },
            acq(1),
            acq(2),
            acq(3),
            acq(0), // hit: still resident
            SlotEvent::Unpin { clv: 0 },
        ]);
        t.meta.costs = vec![4.0, 1.0, 2.0, 3.0]; // for the cost-aware policies
        for p in Policy::all() {
            let s = simulate(&t, 2, p).unwrap();
            assert_eq!(s.hits, 1, "{p}: pinned clv 0 must survive");
            assert_eq!(s.misses, 4, "{p}");
        }
    }

    #[test]
    fn stuck_when_pins_fill_every_slot() {
        let t = trace(vec![
            acq(0),
            SlotEvent::Pin { clv: 0, n: 1 },
            acq(1),
            SlotEvent::Pin { clv: 1, n: 1 },
            acq(2),
        ]);
        let err = simulate(&t, 2, Policy::Kind(StrategyKind::Lru)).unwrap_err();
        assert_eq!(err, SimError::Stuck { index: 4, clv: 2 });
        // One more slot clears it.
        assert!(simulate(&t, 3, Policy::Kind(StrategyKind::Lru)).is_ok());
    }

    #[test]
    fn skipped_pins_balance_across_eviction_divergence() {
        // clv 0 pinned while absent (possible under cross-policy
        // replay): the pin must be remembered and consumed by the unpin
        // without ever protecting a stranger's slot.
        let t = trace(vec![
            SlotEvent::Pin { clv: 0, n: 2 },
            acq(1),
            SlotEvent::Unpin { clv: 0 },
            SlotEvent::Unpin { clv: 0 },
            acq(2),
            acq(1),
        ]);
        let s = simulate(&t, 1, Policy::Kind(StrategyKind::Lru)).unwrap();
        // One slot: 1 miss, 2 evicts 1, 1 evicts 2 -> 3 misses.
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn invalidate_frees_without_counting_eviction() {
        let t = trace(vec![acq(0), SlotEvent::Invalidate { clv: 0 }, acq(1)]);
        let s = simulate(&t, 1, Policy::Kind(StrategyKind::Fifo)).unwrap();
        assert_eq!(s.evictions, 0, "invalidate is not an eviction");
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn poison_counts_one_eviction_and_drains_pins() {
        // Mirrors the live `poison_counts_one_eviction…` test shape.
        let t = trace(vec![
            acq(0),
            acq(1),
            SlotEvent::Pin { clv: 1, n: 1 },
            SlotEvent::Poison { clv: 1 },
            acq(1), // recompute: a miss, no second eviction
        ]);
        let s = simulate(&t, 2, Policy::Kind(StrategyKind::Fifo)).unwrap();
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn missing_costs_is_a_typed_error() {
        let t = trace(vec![acq(0)]);
        let err = simulate(&t, 1, Policy::Kind(StrategyKind::CostBased)).unwrap_err();
        assert_eq!(err, SimError::MissingCosts(StrategyKind::CostBased));
        let mut t = t;
        t.meta.costs = vec![1.0];
        assert!(simulate(&t, 1, Policy::Kind(StrategyKind::CostBased)).is_ok());
    }

    #[test]
    fn cost_based_uses_trace_costs() {
        let mut t = trace(vec![acq(0), acq(1), acq(2)]);
        t.meta.costs = vec![5.0, 1.0, 3.0];
        let s = simulate(&t, 2, Policy::Kind(StrategyKind::CostBased)).unwrap();
        assert_eq!(s.evictions, 1); // clv 1 (cheapest) was the victim…
        let t2 = Trace { meta: t.meta.clone(), events: vec![acq(0), acq(1), acq(2), acq(0)] };
        let s2 = simulate(&t2, 2, Policy::Kind(StrategyKind::CostBased)).unwrap();
        assert_eq!(s2.hits, 1, "…so the expensive clv 0 must still be resident");
    }
}
