//! Offline replay of AMC slot-access traces: the replacement-policy lab.
//!
//! A captured trace (`--slot-trace FILE`, see `phylo_obs::slottrace`)
//! names the run's demand stream in *logical* CLV terms. This crate
//! replays that stream through a pure in-memory model of the slot
//! manager's eviction table ([`simulate`]), for **any** policy and
//! **any** slot count — without touching alignments, trees or kernels.
//! Two properties make it useful:
//!
//! 1. **Differential exactness.** Replaying a trace with the *same*
//!    policy and slot count as the captured run reproduces the live
//!    manager's `hits`/`misses`/`evictions`/`installs`/`acquires`
//!    bit-exactly: events are recorded inside the table-lock critical
//!    sections (so the trace is the true serialization order), the
//!    simulator reuses the very same [`ReplacementStrategy`]
//!    implementations, and both sides start from the same free-list
//!    order. Every future eviction change is testable against this
//!    contract (`phyloplace replay --verify`).
//! 2. **The oracle floor.** [`Policy::Belady`] is the clairvoyant MIN
//!    policy — evict the resident CLV whose next demand access lies
//!    furthest in the future — which is optimal among demand-fill
//!    policies. Its miss count is the lower bound every implementable
//!    policy is judged against, exactly like pplacer's mmap baseline
//!    bounds memory from the other side.
//!
//! Fault-run caveat: traces containing [`SlotEvent::Poison`] events are
//! replayed with a documented approximation (a dead computing thread's
//! slot is reclaimed against the lowest-index failed slot), so only
//! fault-injection runs with *concurrent* poisons can diverge; normal
//! runs never record a poison.

pub mod sim;
pub mod sweep;
pub mod tiersim;

pub use sim::{simulate, simulate_observed, Policy, SimError, SimEvent, SimStats};
pub use sweep::{
    min_feasible_slots, recommend, slot_count_ladder, sweep, Recommendation, SweepRow,
};
pub use tiersim::{crossover_cost, simulate_tiers, TierModel, TierSimStats};

pub use phylo_amc::{ReplacementStrategy, StrategyKind};
pub use phylo_obs::slottrace::{SlotEvent, Trace, TraceMeta, NO_CLV};
