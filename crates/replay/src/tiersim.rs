//! Offline what-if analysis for tiered CLV storage: replay a captured
//! slot trace and model how a [`phylo_amc::TieredStore`] attached to
//! the same run would have split the misses into tier reloads and
//! recomputations.
//!
//! The model mirrors the live store's decision points exactly:
//!
//! * an eviction is an *offer* — accepted write-once, gated first by
//!   the demote-vs-drop cost model (`reload_ns >= ns_per_cost × cost`
//!   drops), then by the tier byte budget;
//! * a miss probes the modeled store — present means a reload at the
//!   tier's latency, absent means a recomputation at
//!   `cost × ns_per_cost`.
//!
//! Unlike the live store the model is fed *fixed* latencies instead of
//! measuring EWMAs, which is the point: feed it the per-tier reload
//! latencies from `BENCH_tiers.json` (or `bench_smoke.sh`) and a
//! trace from any run, and it answers "would a compressed tier have
//! paid off here, and below which recompute cost does it stop paying?"
//! without re-running placement.

use std::collections::HashSet;

use crate::sim::{simulate_observed, Policy, SimError, SimEvent};
use phylo_obs::slottrace::Trace;

/// Fixed-latency model of one tier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierModel {
    /// Modeled reload latency per payload, nanoseconds (measure it:
    /// `bench_smoke.sh` prints one line per tier).
    pub reload_ns: f64,
    /// Kernel nanoseconds per unit of recompute cost (the trace's
    /// `#costs` table is in these units; the live store measures this
    /// as an EWMA, a bench run prints its converged value).
    pub recompute_ns_per_cost: f64,
    /// Byte cap across stored payloads; `None` is unbounded.
    pub capacity_bytes: Option<u64>,
    /// Stored bytes per payload. `None` uses the trace's
    /// `bytes_per_slot` (the uncompressed slot row — exact for the
    /// disk tier, an upper bound for a compressed tier).
    pub entry_bytes: Option<u64>,
}

/// What the modeled tier would have done with the trace's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSimStats {
    /// Offers accepted into the modeled store.
    pub demotions: u64,
    /// Offers refused by the cost model (recompute estimated cheaper).
    pub drops_cost: u64,
    /// Offers refused by the byte budget.
    pub drops_budget: u64,
    /// Misses answered by the modeled store.
    pub reloads: u64,
    /// Misses that recompute (cold, dropped, or never demoted).
    pub recomputes: u64,
    /// Modeled nanoseconds spent reloading.
    pub reload_ns_total: u64,
    /// Modeled nanoseconds spent recomputing.
    pub recompute_ns_total: u64,
    /// Modeled nanoseconds the misses would have cost with *no* tiers
    /// (every miss recomputes) — the baseline the saving is against.
    pub untiered_ns_total: u64,
}

impl TierSimStats {
    /// Modeled time saved by the tier over recompute-everything,
    /// nanoseconds (negative when the tier loses).
    pub fn saved_ns(&self) -> i64 {
        self.untiered_ns_total as i64 - (self.reload_ns_total + self.recompute_ns_total) as i64
    }
}

/// The recompute cost (in the trace's `#costs` units) at which a
/// reload and a recomputation break even under `model`: CLVs costlier
/// than this are worth demoting, cheaper ones are worth dropping.
/// `None` when the model has no recompute-rate measurement.
pub fn crossover_cost(model: &TierModel) -> Option<f64> {
    if model.recompute_ns_per_cost > 0.0 && model.reload_ns >= 0.0 {
        Some(model.reload_ns / model.recompute_ns_per_cost)
    } else {
        None
    }
}

/// Replays `trace` at `n_slots`/`policy` and models the tier traffic a
/// [`TierModel`]-shaped store would have seen. CLVs missing from the
/// trace's `#costs` table count as cost 0 (always demoted — the live
/// store is optimistic about unmeasured costs too — and free to
/// recompute).
pub fn simulate_tiers(
    trace: &Trace,
    n_slots: usize,
    policy: Policy,
    model: &TierModel,
) -> Result<TierSimStats, SimError> {
    let entry_bytes = model.entry_bytes.unwrap_or(trace.meta.bytes_per_slot).max(1);
    let cost = |clv: u32| trace.meta.costs.get(clv as usize).copied().unwrap_or(0.0);
    let recompute_ns = |clv: u32| (cost(clv) * model.recompute_ns_per_cost).max(0.0).round() as u64;

    let mut stored: HashSet<u32> = HashSet::new();
    let mut stored_bytes = 0u64;
    let mut stats = TierSimStats::default();

    simulate_observed(trace, n_slots, policy, &mut |ev| match ev {
        SimEvent::Evict { clv } => {
            if stored.contains(&clv) {
                return; // write-once: the copy is still good
            }
            // Demote-vs-drop, in the live store's order: cost gate
            // first, then the byte budget.
            let c = cost(clv);
            if model.reload_ns > 0.0
                && model.recompute_ns_per_cost > 0.0
                && c > 0.0
                && model.reload_ns >= model.recompute_ns_per_cost * c
            {
                stats.drops_cost += 1;
                return;
            }
            if let Some(cap) = model.capacity_bytes {
                if stored_bytes + entry_bytes > cap {
                    stats.drops_budget += 1;
                    return;
                }
            }
            stored.insert(clv);
            stored_bytes += entry_bytes;
            stats.demotions += 1;
        }
        SimEvent::Miss { clv } => {
            stats.untiered_ns_total += recompute_ns(clv);
            if stored.contains(&clv) {
                stats.reloads += 1;
                stats.reload_ns_total += model.reload_ns.max(0.0).round() as u64;
            } else {
                stats.recomputes += 1;
                stats.recompute_ns_total += recompute_ns(clv);
            }
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(text: &str) -> Trace {
        Trace::parse(text).unwrap()
    }

    /// 4 CLVs round-robin over 2 slots: every revisit is a miss, and
    /// after the first lap every victim has been demoted.
    const THRASH: &str = "#phylo-slot-trace v1\n\
        #meta n_clvs=4 n_slots=2 strategy=lru bytes_per_slot=100\n\
        #costs 8.0 8.0 8.0 8.0\n\
        a 0\na 1\na 2\na 3\na 0\na 1\na 2\na 3\n";

    #[test]
    fn reloads_replace_recomputes_when_the_tier_wins() {
        let model = TierModel {
            reload_ns: 10.0,
            recompute_ns_per_cost: 100.0, // recompute = 800ns >> reload
            capacity_bytes: None,
            entry_bytes: None,
        };
        let s =
            simulate_tiers(&trace_of(THRASH), 2, Policy::parse("lru").unwrap(), &model).unwrap();
        // Lap one: 4 cold misses, 2 demotions (two victims evicted).
        // Lap two: every miss hits the store once demoted.
        assert_eq!(s.drops_cost, 0);
        assert!(s.reloads >= 2, "{s:?}");
        assert_eq!(s.reloads + s.recomputes, 8);
        assert!(s.saved_ns() > 0, "{s:?}");
    }

    #[test]
    fn cost_gate_drops_cheap_clvs() {
        let model = TierModel {
            reload_ns: 10_000.0, // reload slower than any recompute
            recompute_ns_per_cost: 1.0,
            capacity_bytes: None,
            entry_bytes: None,
        };
        let s =
            simulate_tiers(&trace_of(THRASH), 2, Policy::parse("lru").unwrap(), &model).unwrap();
        assert_eq!(s.demotions, 0, "{s:?}");
        assert!(s.drops_cost > 0, "{s:?}");
        assert_eq!(s.reloads, 0);
        assert_eq!(s.recomputes, 8);
        assert_eq!(s.saved_ns(), 0);
    }

    #[test]
    fn byte_budget_caps_the_store() {
        let model = TierModel {
            reload_ns: 10.0,
            recompute_ns_per_cost: 100.0,
            capacity_bytes: Some(100), // exactly one entry
            entry_bytes: None,         // meta: 100 bytes per slot
        };
        let s =
            simulate_tiers(&trace_of(THRASH), 2, Policy::parse("lru").unwrap(), &model).unwrap();
        assert_eq!(s.demotions, 1, "{s:?}");
        assert!(s.drops_budget > 0, "{s:?}");
    }

    #[test]
    fn crossover_is_reload_over_rate() {
        let model = TierModel {
            reload_ns: 500.0,
            recompute_ns_per_cost: 100.0,
            capacity_bytes: None,
            entry_bytes: None,
        };
        assert_eq!(crossover_cost(&model), Some(5.0));
        let unmeasured = TierModel { recompute_ns_per_cost: 0.0, ..model };
        assert_eq!(crossover_cost(&unmeasured), None);
    }

    #[test]
    fn observer_reports_misses_and_demand_evictions_only() {
        // Invalidate drops must not surface as Evict offers.
        let text = "#phylo-slot-trace v1\n\
            #meta n_clvs=3 n_slots=2 strategy=lru bytes_per_slot=10\n\
            a 0\na 1\ni 0\na 2\na 0\n";
        let mut evicts = 0u32;
        let mut misses = 0u32;
        crate::sim::simulate_observed(
            &trace_of(text),
            2,
            Policy::parse("lru").unwrap(),
            &mut |ev| match ev {
                SimEvent::Evict { .. } => evicts += 1,
                SimEvent::Miss { .. } => misses += 1,
            },
        )
        .unwrap();
        // a0 miss, a1 miss, i0 frees a slot, a2 miss (free slot, no
        // evict), a0 miss (evicts 1 or 2).
        assert_eq!(misses, 4);
        assert_eq!(evicts, 1);
    }
}
