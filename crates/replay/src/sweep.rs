//! Slot-count × policy sweeps over a captured trace, and the
//! `--maxmem` recommendation derived from them.
//!
//! The interesting slot counts span from the *feasibility floor* (one
//! more than the trace's peak concurrent pinned set — below that, any
//! policy jams on an all-pinned table) up to the *working set* (the
//! number of distinct CLVs demanded — at or above it every policy pays
//! only compulsory misses). The ladder is geometric between those ends,
//! because miss curves bend on ratios, not differences.

use std::collections::BTreeSet;

use phylo_obs::slottrace::{SlotEvent, Trace, NO_CLV};

use crate::sim::{simulate, Policy, SimError, SimStats};

/// The smallest slot count that can serve `trace` under any policy: the
/// peak number of concurrently pinned CLVs, plus one slot to evict
/// through. (With that headroom a demand access always has at least one
/// unpinned slot — free or victim — so the replay can never jam.)
pub fn min_feasible_slots(trace: &Trace) -> usize {
    let mut n_clvs = trace.meta.n_clvs as usize;
    for ev in &trace.events {
        if let SlotEvent::Pin { clv, .. } = *ev {
            if clv != NO_CLV {
                n_clvs = n_clvs.max(clv as usize + 1);
            }
        }
    }
    let mut pins = vec![0u64; n_clvs];
    let mut pinned_now = 0usize;
    let mut peak = 0usize;
    for ev in &trace.events {
        match *ev {
            SlotEvent::Pin { clv, n } if clv != NO_CLV && n > 0 => {
                if pins[clv as usize] == 0 {
                    pinned_now += 1;
                    peak = peak.max(pinned_now);
                }
                pins[clv as usize] += n as u64;
            }
            SlotEvent::Unpin { clv } if clv != NO_CLV => {
                let c = &mut pins[clv as usize];
                if *c > 0 {
                    *c -= 1;
                    if *c == 0 {
                        pinned_now -= 1;
                    }
                }
            }
            SlotEvent::UnpinAll => {
                pins.iter_mut().for_each(|c| *c = 0);
                pinned_now = 0;
            }
            // A poisoned CLV's mapping is torn down with the caller's
            // pin; foreign pins then drain against a slot with no
            // occupant, which no longer constrains *which* CLVs pin.
            SlotEvent::Poison { clv } if clv != NO_CLV => {
                if pins[clv as usize] > 0 {
                    pins[clv as usize] = 0;
                    pinned_now -= 1;
                }
            }
            _ => {}
        }
    }
    peak + 1
}

/// The default slot counts a sweep visits: the feasibility floor, the
/// working set, the captured run's own slot count, and geometric rungs
/// in between (≈ √2 apart), deduplicated and sorted.
pub fn slot_count_ladder(trace: &Trace) -> Vec<usize> {
    let lo = min_feasible_slots(trace);
    let hi = trace.distinct_acquired().max(lo);
    let mut rungs = BTreeSet::new();
    rungs.insert(lo);
    rungs.insert(hi);
    if trace.meta.n_slots > 0 {
        rungs.insert((trace.meta.n_slots as usize).clamp(lo, hi));
    }
    let mut x = lo as f64;
    while (x * 1.5) < hi as f64 {
        x *= 1.5;
        rungs.insert(x.round() as usize);
    }
    rungs.into_iter().collect()
}

/// One sweep cell: a policy replayed at one slot count.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The replayed policy.
    pub policy: Policy,
    /// The simulated slot count.
    pub n_slots: usize,
    /// Counters, or why the replay could not complete.
    pub outcome: Result<SimStats, SimError>,
}

/// Replays every `(slot count, policy)` combination.
pub fn sweep(trace: &Trace, slot_counts: &[usize], policies: &[Policy]) -> Vec<SweepRow> {
    let mut rows = Vec::with_capacity(slot_counts.len() * policies.len());
    for &n_slots in slot_counts {
        for &policy in policies {
            rows.push(SweepRow { policy, n_slots, outcome: simulate(trace, n_slots, policy) });
        }
    }
    rows
}

/// A memory recommendation: the smallest swept slot count at which the
/// chosen policy's misses come within `threshold_pct` of the oracle's.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The policy the recommendation is for.
    pub policy: Policy,
    /// Smallest slot count meeting the threshold.
    pub n_slots: usize,
    /// That policy's misses there.
    pub policy_misses: u64,
    /// The oracle's misses there.
    pub oracle_misses: u64,
    /// Arena bytes this slot count costs (`n_slots × bytes_per_slot`;
    /// 0 when the trace carries no slot size).
    pub arena_bytes: u64,
}

/// Scans `rows` (as produced by [`sweep`], including [`Policy::Belady`]
/// cells) for the smallest slot count where `policy` is within
/// `threshold_pct` percent of the oracle's miss count **and** the
/// oracle there is within the same threshold of its best swept point.
///
/// The second condition matters: at the feasibility floor every policy
/// trivially ties the oracle (nothing can do better with no headroom),
/// which would "recommend" the most thrashing configuration. Requiring
/// the oracle curve itself to have flattened pins the recommendation to
/// where extra memory stops paying.
pub fn recommend(
    rows: &[SweepRow],
    policy: Policy,
    threshold_pct: f64,
    bytes_per_slot: u64,
) -> Option<Recommendation> {
    let slack = 1.0 + threshold_pct / 100.0;
    let best_oracle = rows
        .iter()
        .filter(|r| r.policy == Policy::Belady)
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|s| s.misses)
        .min()?;
    let mut counts: Vec<usize> = rows.iter().map(|r| r.n_slots).collect();
    counts.sort_unstable();
    counts.dedup();
    for n_slots in counts {
        let at = |p: Policy| {
            rows.iter()
                .find(|r| r.n_slots == n_slots && r.policy == p)
                .and_then(|r| r.outcome.as_ref().ok())
                .copied()
        };
        let (Some(live), Some(oracle)) = (at(policy), at(Policy::Belady)) else { continue };
        if live.misses as f64 <= oracle.misses as f64 * slack
            && oracle.misses as f64 <= best_oracle as f64 * slack
        {
            return Some(Recommendation {
                policy,
                n_slots,
                policy_misses: live.misses,
                oracle_misses: oracle.misses,
                arena_bytes: n_slots as u64 * bytes_per_slot,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_amc::StrategyKind;
    use phylo_obs::slottrace::TraceMeta;

    fn acq(clv: u32) -> SlotEvent {
        SlotEvent::Acquire { clv }
    }

    #[test]
    fn feasibility_floor_tracks_peak_pinned_set() {
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![
                acq(0),
                SlotEvent::Pin { clv: 0, n: 2 },
                acq(1),
                SlotEvent::Pin { clv: 1, n: 1 },
                SlotEvent::Unpin { clv: 0 },
                SlotEvent::Unpin { clv: 0 }, // peak was {0,1} = 2
                SlotEvent::Unpin { clv: 1 },
                acq(2),
                SlotEvent::Pin { clv: 2, n: 1 },
                SlotEvent::UnpinAll,
            ],
        };
        assert_eq!(min_feasible_slots(&t), 3);
        // And the floor really is feasible while one less jams.
        assert!(simulate(&t, 3, Policy::Kind(StrategyKind::Lru)).is_ok());
        let t_jam = Trace {
            meta: t.meta.clone(),
            events: t.events[..4].to_vec().into_iter().chain([acq(2)]).collect(),
        };
        assert!(simulate(&t_jam, 2, Policy::Kind(StrategyKind::Lru)).is_err());
    }

    #[test]
    fn ladder_spans_floor_to_working_set() {
        let mut events = Vec::new();
        for clv in 0..40u32 {
            events.push(acq(clv));
        }
        let t = Trace { meta: TraceMeta { n_slots: 7, ..Default::default() }, events };
        let ladder = slot_count_ladder(&t);
        assert_eq!(*ladder.first().unwrap(), 1);
        assert_eq!(*ladder.last().unwrap(), 40);
        assert!(ladder.contains(&7), "captured slot count is a rung: {ladder:?}");
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn recommendation_picks_smallest_count_within_threshold() {
        // Cyclic scan over 6 CLVs: LRU pays full misses below the
        // working set; at 6 slots it matches the oracle exactly.
        let mut events = Vec::new();
        for _ in 0..10 {
            for clv in 0..6u32 {
                events.push(acq(clv));
            }
        }
        let t = Trace { meta: TraceMeta::default(), events };
        let policies = [Policy::Kind(StrategyKind::Lru), Policy::Belady];
        let rows = sweep(&t, &slot_count_ladder(&t), &policies);
        let rec = recommend(&rows, Policy::Kind(StrategyKind::Lru), 10.0, 100).unwrap();
        assert_eq!(rec.n_slots, 6);
        assert_eq!(rec.policy_misses, rec.oracle_misses);
        assert_eq!(rec.arena_bytes, 600);
    }
}
