//! A pplacer-style baseline placer with optional file-backed CLV storage.
//!
//! The paper compares EPA-NG's AMC against `pplacer`, "the only other ML
//! phylogenetic placement software that offers an option to reduce the
//! memory footprint": pplacer can back its large allocations with a
//! memory-mapped file, trading RAM for disk bandwidth, as an on/off switch
//! with no finer control (paper §III, §V-B).
//!
//! This crate reproduces that *behavioral envelope* rather than pplacer's
//! OCaml internals:
//!
//! * all `3(n−2)` directional CLVs are materialized (no slot management);
//! * [`Backing::Ram`] keeps them in memory — the high-footprint baseline;
//! * [`Backing::File`] streams them to an on-disk store and reads them
//!   back per branch during placement — low RAM, moderate slowdown, still
//!   2–3× the memory of EPA-NG with AMC *off*, as in the paper's Fig. 5;
//! * there is no preplacement heuristic: every query is scored thoroughly
//!   against every branch, which is exactly why the baseline is slower.

pub mod backing;
pub mod place;

pub use backing::{Backing, ClvStoreBacking};
pub use place::{PplacerConfig, PplacerLike, PplacerReport};
