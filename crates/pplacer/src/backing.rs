//! CLV storage backings: RAM or an on-disk file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Which medium holds the CLV set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// Everything in main memory (pplacer default).
    Ram,
    /// CLVs in an unlinked temporary file, read back on demand
    /// (pplacer's `--mmap-file` memory-saving mode).
    File,
}

/// A fixed-size array of CLV records, each `clv_len` f64 values plus
/// `patterns` scaler counts, stored in RAM or a temp file.
pub enum ClvStoreBacking {
    /// In-memory storage.
    Ram {
        /// Flat CLV values, `n_records × clv_len`.
        data: Vec<f64>,
        /// Flat scaler counts, `n_records × patterns`.
        scales: Vec<u32>,
        /// Entries per CLV.
        clv_len: usize,
        /// Patterns per CLV.
        patterns: usize,
    },
    /// File-backed storage; only scratch buffers live in RAM.
    File {
        /// Backing file (removed from the filesystem once opened).
        file: File,
        /// Path (kept for diagnostics; the file is already unlinked).
        path: PathBuf,
        /// Entries per CLV.
        clv_len: usize,
        /// Patterns per CLV.
        patterns: usize,
    },
}

impl ClvStoreBacking {
    /// Allocates storage for `n_records` CLVs.
    pub fn new(
        backing: Backing,
        n_records: usize,
        clv_len: usize,
        patterns: usize,
    ) -> std::io::Result<Self> {
        match backing {
            Backing::Ram => Ok(ClvStoreBacking::Ram {
                data: vec![0.0; n_records * clv_len],
                scales: vec![0; n_records * patterns],
                clv_len,
                patterns,
            }),
            Backing::File => {
                let path = std::env::temp_dir().join(format!(
                    "pplacer-clv-{}-{:x}.bin",
                    std::process::id(),
                    n_records * clv_len
                ));
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                file.set_len((n_records * Self::record_bytes(clv_len, patterns)) as u64)?;
                // Unlink immediately so the file disappears with the process.
                let _ = std::fs::remove_file(&path);
                Ok(ClvStoreBacking::File { file, path, clv_len, patterns })
            }
        }
    }

    /// Bytes per record on disk (CLV values + scaler counts).
    fn record_bytes(clv_len: usize, patterns: usize) -> usize {
        clv_len * 8 + patterns * 4
    }

    /// Writes record `idx`.
    pub fn write_record(&mut self, idx: usize, clv: &[f64], scale: &[u32]) -> std::io::Result<()> {
        match self {
            ClvStoreBacking::Ram { data, scales, clv_len, patterns } => {
                data[idx * *clv_len..(idx + 1) * *clv_len].copy_from_slice(clv);
                scales[idx * *patterns..(idx + 1) * *patterns].copy_from_slice(scale);
                Ok(())
            }
            ClvStoreBacking::File { file, clv_len, patterns, .. } => {
                let off = (idx * Self::record_bytes(*clv_len, *patterns)) as u64;
                file.seek(SeekFrom::Start(off))?;
                let mut buf = Vec::with_capacity(Self::record_bytes(*clv_len, *patterns));
                for v in clv {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for s in scale {
                    buf.extend_from_slice(&s.to_le_bytes());
                }
                file.write_all(&buf)
            }
        }
    }

    /// Reads record `idx` into the provided buffers.
    pub fn read_record(
        &mut self,
        idx: usize,
        clv: &mut [f64],
        scale: &mut [u32],
    ) -> std::io::Result<()> {
        match self {
            ClvStoreBacking::Ram { data, scales, clv_len, patterns } => {
                clv.copy_from_slice(&data[idx * *clv_len..(idx + 1) * *clv_len]);
                scale.copy_from_slice(&scales[idx * *patterns..(idx + 1) * *patterns]);
                Ok(())
            }
            ClvStoreBacking::File { file, clv_len, patterns, .. } => {
                let off = (idx * Self::record_bytes(*clv_len, *patterns)) as u64;
                file.seek(SeekFrom::Start(off))?;
                let mut buf = vec![0u8; Self::record_bytes(*clv_len, *patterns)];
                file.read_exact(&mut buf)?;
                for (i, v) in clv.iter_mut().enumerate() {
                    *v = f64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
                }
                let base = *clv_len * 8;
                for (i, s) in scale.iter_mut().enumerate() {
                    *s = u32::from_le_bytes(
                        buf[base + i * 4..base + (i + 1) * 4].try_into().unwrap(),
                    );
                }
                Ok(())
            }
        }
    }

    /// Bytes resident in main memory (the quantity Fig. 5 compares).
    pub fn ram_bytes(&self) -> usize {
        match self {
            ClvStoreBacking::Ram { data, scales, .. } => data.len() * 8 + scales.len() * 4,
            // File mode keeps nothing resident besides scratch (counted by
            // the caller).
            ClvStoreBacking::File { .. } => 0,
        }
    }

    /// Total logical bytes of the CLV database, independent of medium
    /// (used to model mmap page-cache residency in file mode).
    pub fn db_bytes(&self) -> usize {
        match self {
            ClvStoreBacking::Ram { data, scales, .. } => data.len() * 8 + scales.len() * 4,
            ClvStoreBacking::File { file, .. } => {
                file.metadata().map(|m| m.len() as usize).unwrap_or(0)
            }
        }
    }
}

impl std::fmt::Debug for ClvStoreBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClvStoreBacking::Ram { clv_len, .. } => {
                write!(f, "ClvStoreBacking::Ram(clv_len={clv_len}, bytes={})", self.ram_bytes())
            }
            ClvStoreBacking::File { path, clv_len, .. } => {
                write!(f, "ClvStoreBacking::File({path:?}, clv_len={clv_len})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(backing: Backing) {
        let mut store = ClvStoreBacking::new(backing, 4, 6, 3).unwrap();
        let clv: Vec<f64> = (0..6).map(|i| i as f64 * 1.5).collect();
        let scale = vec![7u32, 8, 9];
        store.write_record(2, &clv, &scale).unwrap();
        let other: Vec<f64> = (0..6).map(|i| -(i as f64)).collect();
        store.write_record(0, &other, &[1, 1, 1]).unwrap();
        let mut c = vec![0.0; 6];
        let mut s = vec![0u32; 3];
        store.read_record(2, &mut c, &mut s).unwrap();
        assert_eq!(c, clv);
        assert_eq!(s, scale);
        store.read_record(0, &mut c, &mut s).unwrap();
        assert_eq!(c, other);
        assert_eq!(s, vec![1, 1, 1]);
    }

    #[test]
    fn ram_round_trip() {
        round_trip(Backing::Ram);
    }

    #[test]
    fn file_round_trip() {
        round_trip(Backing::File);
    }

    #[test]
    fn ram_accounting() {
        let store = ClvStoreBacking::new(Backing::Ram, 10, 100, 25).unwrap();
        assert_eq!(store.ram_bytes(), 10 * (100 * 8 + 25 * 4));
        let store = ClvStoreBacking::new(Backing::File, 10, 100, 25).unwrap();
        assert_eq!(store.ram_bytes(), 0);
    }
}
