//! The baseline placement procedure.

use crate::backing::{Backing, ClvStoreBacking};
use epa_place::result::{PlacementEntry, PlacementResult};
use epa_place::score::{AttachmentPartials, BranchScoreTable, ScoreScratch};
use epa_place::{PlaceError, QueryBatch};
use phylo_amc::StrategyKind;
use phylo_engine::{ManagedStore, ReferenceContext};
use phylo_kernel::kernels::{propagate_scratch, Side};
use phylo_kernel::{KernelScratch, TipTable};
use phylo_tree::{DirEdgeId, EdgeId};
use std::time::{Duration, Instant};

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct PplacerConfig {
    /// RAM or file-backed CLV storage.
    pub backing: Backing,
    /// Queries per pass over the branch set (controls file traffic in
    /// file mode, like pplacer's working set).
    pub chunk_size: usize,
    /// Golden-section iterations for the pendant length.
    pub pendant_iterations: usize,
    /// Footprint calibration: real pplacer's resident memory is a
    /// multiple of the raw CLV bytes (OCaml boxing, per-node posterior
    /// structures); the paper's Fig. 5 shows ≈2–3× relative to the
    /// analogous EPA-NG layout. Applied to RAM-mode accounting only.
    pub overhead_factor: f64,
    /// Fraction of the on-disk CLV database assumed page-cache-resident
    /// in file (mmap) mode — pplacer's memory saving is large but not
    /// total.
    pub mmap_resident_fraction: f64,
}

impl Default for PplacerConfig {
    fn default() -> Self {
        PplacerConfig {
            backing: Backing::Ram,
            chunk_size: 100,
            pendant_iterations: 6,
            overhead_factor: 2.5,
            mmap_resident_fraction: 0.3,
        }
    }
}

/// Run metrics of the baseline.
#[derive(Debug, Clone, Default)]
pub struct PplacerReport {
    /// Wall-clock time of CLV database construction.
    pub build_time: Duration,
    /// Wall-clock time of placement proper.
    pub place_time: Duration,
    /// Peak resident bytes (CLVs in RAM mode; scratch only in file mode).
    pub peak_memory: usize,
    /// (query, branch) pairs scored (always the full product — no
    /// prescoring heuristic).
    pub n_scored: u64,
}

/// The baseline placer: full CLV set, no prescoring, optional file backing.
pub struct PplacerLike {
    ctx: ReferenceContext,
    site_to_pattern: Vec<u32>,
    cfg: PplacerConfig,
    store: ClvStoreBacking,
    /// Dense record index per directed edge (`u32::MAX` for tip origins).
    record_of: Vec<u32>,
    build_time: Duration,
    static_bytes: usize,
}

impl PplacerLike {
    /// Builds the CLV database: every inner-origin directional CLV is
    /// computed once and stored in the chosen backing.
    pub fn build(
        ctx: ReferenceContext,
        site_to_pattern: Vec<u32>,
        cfg: PplacerConfig,
    ) -> Result<Self, PlaceError> {
        let t0 = Instant::now();
        let layout = *ctx.layout();
        let mut record_of = vec![u32::MAX; ctx.tree().n_dir_edges()];
        let mut n_records = 0u32;
        for d in ctx.tree().inner_dir_edges() {
            record_of[d.idx()] = n_records;
            n_records += 1;
        }
        let mut store = ClvStoreBacking::new(
            cfg.backing,
            n_records as usize,
            layout.clv_len(),
            layout.patterns,
        )
        .map_err(|e| PlaceError::BadConfig(format!("CLV backing: {e}")))?;
        // Compute with a modest slot budget and stream records out.
        let work_slots = (ctx.min_slots() + 32).min(ctx.max_slots().max(ctx.min_slots()));
        let engine = ManagedStore::with_slots(&ctx, work_slots, StrategyKind::CostBased)?;
        for e in phylo_tree::traversal::edge_dfs_order(ctx.tree()) {
            let dirs = [DirEdgeId::new(e, 0), DirEdgeId::new(e, 1)];
            let block = engine.prepare(&ctx, &dirs)?;
            for d in dirs {
                if let Some((clv, scale)) = engine.clv_of(&ctx, d) {
                    store
                        .write_record(record_of[d.idx()] as usize, clv, scale)
                        .map_err(|io| PlaceError::BadConfig(format!("CLV backing: {io}")))?;
                }
            }
            engine.release(block);
        }
        let static_bytes = ctx.approx_bytes();
        Ok(PplacerLike {
            ctx,
            site_to_pattern,
            cfg,
            store,
            record_of,
            build_time: t0.elapsed(),
            static_bytes,
        })
    }

    /// The reference context.
    pub fn ctx(&self) -> &ReferenceContext {
        &self.ctx
    }

    /// Places every query against every branch (no candidate heuristic).
    pub fn place(
        &mut self,
        batch: &QueryBatch,
    ) -> Result<(Vec<PlacementResult>, PplacerReport), PlaceError> {
        let t0 = Instant::now();
        let layout = *self.ctx.layout();
        let mut report = PplacerReport { build_time: self.build_time, ..Default::default() };
        let mut results: Vec<PlacementResult> = batch
            .queries()
            .iter()
            .map(|q| PlacementResult { name: q.name.clone(), placements: Vec::new() })
            .collect();
        let mean_len = self.ctx.tree().total_length() / self.ctx.tree().n_edges() as f64;
        // Scratch: two record buffers plus kernel scratch.
        let mut clv_u = vec![0.0; layout.clv_len()];
        let mut scale_u = vec![0u32; layout.patterns];
        let mut clv_v = vec![0.0; layout.clv_len()];
        let mut scale_v = vec![0u32; layout.patterns];
        let mut prox = vec![0.0; layout.clv_len()];
        let mut prox_scale = vec![0u32; layout.patterns];
        let mut dist = vec![0.0; layout.clv_len()];
        let mut dist_scale = vec![0u32; layout.patterns];
        let mut pm = vec![0.0; layout.pmatrix_len()];
        let mut scratch = ScoreScratch::new(&self.ctx);
        let mut kernel = KernelScratch::for_layout(&layout);
        let mut tip_table = TipTable::empty();
        let mut partials = AttachmentPartials::empty();
        let mut table = BranchScoreTable::empty();
        let masks: Vec<u32> = (0..self.ctx.alphabet().n_codes())
            .map(|c| self.ctx.alphabet().state_mask(c as u8))
            .collect();

        let scratch_bytes =
            4 * layout.clv_len() * 8 + 4 * layout.patterns * 4 + layout.pmatrix_len() * 8;
        let clv_resident = match self.cfg.backing {
            crate::backing::Backing::Ram => {
                (self.store.ram_bytes() as f64 * self.cfg.overhead_factor) as usize
            }
            crate::backing::Backing::File => {
                (self.store.db_bytes() as f64 * self.cfg.mmap_resident_fraction) as usize
            }
        };
        report.peak_memory = self.static_bytes
            + clv_resident
            + scratch_bytes
            + batch.chunk_bytes(self.cfg.chunk_size);

        let edges: Vec<EdgeId> = self.ctx.tree().all_edges().collect();
        let mut qoff = 0usize;
        for chunk in batch.chunks(self.cfg.chunk_size) {
            for &e in &edges {
                // Fetch both sides of the branch from the backing.
                let t = self.ctx.tree().edge_length(e);
                for (side_idx, (clv, scale)) in
                    [(&mut clv_u, &mut scale_u), (&mut clv_v, &mut scale_v)].into_iter().enumerate()
                {
                    let d = DirEdgeId::new(e, side_idx as u8);
                    let rec = self.record_of[d.idx()];
                    if rec != u32::MAX {
                        self.store
                            .read_record(rec as usize, clv, scale)
                            .map_err(|io| PlaceError::BadConfig(format!("CLV backing: {io}")))?;
                    }
                }
                // Propagate both halves to the midpoint.
                pm.resize(layout.pmatrix_len(), 0.0);
                for (side_idx, (out, out_scale)) in
                    [(&mut prox, &mut prox_scale), (&mut dist, &mut dist_scale)]
                        .into_iter()
                        .enumerate()
                {
                    let d = DirEdgeId::new(e, side_idx as u8);
                    self.ctx.model().transition_matrices(0.5 * t, &mut pm);
                    let node = self.ctx.tree().src(d);
                    if self.ctx.tree().is_leaf(node) {
                        tip_table.rebuild(&layout, &pm, &masks);
                        let side = Side::Tip { table: &tip_table, codes: self.ctx.tip_codes(node) };
                        propagate_scratch(
                            &layout,
                            side,
                            out,
                            out_scale,
                            0..layout.patterns,
                            &mut kernel,
                        );
                    } else {
                        let (clv, scale) =
                            if side_idx == 0 { (&clv_u, &scale_u) } else { (&clv_v, &scale_v) };
                        let side = Side::Clv { clv, scale: Some(scale), pmatrix: &pm };
                        propagate_scratch(
                            &layout,
                            side,
                            out,
                            out_scale,
                            0..layout.patterns,
                            &mut kernel,
                        );
                    }
                }
                partials.ab.clear();
                partials.ab.extend(prox.iter().zip(&dist).map(|(&a, &b)| a * b));
                partials.scale.clear();
                partials.scale.extend(prox_scale.iter().zip(&dist_scale).map(|(&a, &b)| a + b));
                // Score every query of the chunk at this branch, with a
                // short pendant-length refinement.
                for (local, q) in chunk.iter().enumerate() {
                    let (best_pendant, best_ll) = golden_pendant(
                        1e-6,
                        (4.0 * mean_len).max(0.5),
                        self.cfg.pendant_iterations,
                        |pend| {
                            table.rebuild(&self.ctx, &partials, pend, &mut scratch);
                            table.prescore(&self.ctx, &self.site_to_pattern, &q.codes)
                        },
                    );
                    report.n_scored += 1;
                    results[qoff + local].placements.push(PlacementEntry {
                        edge: e,
                        log_likelihood: best_ll,
                        like_weight_ratio: 0.0,
                        pendant_length: best_pendant,
                        distal_length: 0.5 * t,
                    });
                }
            }
            qoff += chunk.len();
        }
        for r in &mut results {
            r.finalize();
            // Keep only a pplacer-like shortlist to bound output size.
            r.placements.truncate(8);
        }
        report.place_time = t0.elapsed();
        Ok((results, report))
    }
}

/// Golden-section maximization used for the pendant refinement.
fn golden_pendant(
    lo: f64,
    hi: f64,
    iterations: usize,
    mut f: impl FnMut(f64) -> f64,
) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iterations {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    if fc > fd {
        (c, fc)
    } else {
        (d, fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_seq::alphabet::AlphabetKind;
    use phylo_seq::{compress, Msa, Sequence};
    use phylo_tree::{generate, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, sites: usize, seed: u64) -> (ReferenceContext, Vec<u32>, QueryBatch) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generate::yule(n, 0.1, &mut rng).unwrap();
        let rows: Vec<Sequence> = (0..n)
            .map(|i| {
                let text: String = (0..sites)
                    .map(|_| "ACGT".as_bytes()[rng.gen_range(0..4usize)] as char)
                    .collect();
                Sequence::from_text(tree.taxon(NodeId(i as u32)), AlphabetKind::Dna, &text).unwrap()
            })
            .collect();
        let msa = Msa::new(rows).unwrap();
        let patterns = compress(&msa).unwrap();
        let s2p = patterns.site_to_pattern().to_vec();
        let queries: Vec<Sequence> = (0..4)
            .map(|i| {
                let src = msa.row(i % n).codes().to_vec();
                Sequence::from_codes(format!("q{i}"), AlphabetKind::Dna, src).unwrap()
            })
            .collect();
        let batch = QueryBatch::new(&queries, sites).unwrap();
        let model = SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap();
        let ctx =
            ReferenceContext::new(tree, model, AlphabetKind::Dna.alphabet(), &patterns).unwrap();
        (ctx, s2p, batch)
    }

    #[test]
    fn ram_mode_places_identical_queries_correctly() {
        let (ctx, s2p, batch) = setup(10, 60, 1);
        let expected: Vec<u32> =
            (0..4).map(|i| ctx.tree().neighbors(NodeId((i % 10) as u32))[0].1 .0).collect();
        let mut placer = PplacerLike::build(ctx, s2p, PplacerConfig::default()).unwrap();
        let (results, report) = placer.place(&batch).unwrap();
        assert_eq!(report.n_scored, 4 * 17); // 4 queries × (2·10−3) branches
        for (r, want) in results.iter().zip(expected) {
            assert_eq!(r.best().unwrap().edge.0, want, "query {}", r.name);
        }
    }

    #[test]
    fn file_mode_matches_ram_mode() {
        let (ctx, s2p, batch) = setup(10, 40, 2);
        let mut ram = PplacerLike::build(ctx, s2p.clone(), PplacerConfig::default()).unwrap();
        let (r_ram, rep_ram) = ram.place(&batch).unwrap();
        let (ctx2, _, _) = setup(10, 40, 2);
        let cfg = PplacerConfig { backing: Backing::File, ..Default::default() };
        let mut file = PplacerLike::build(ctx2, s2p, cfg).unwrap();
        let (r_file, rep_file) = file.place(&batch).unwrap();
        for (a, b) in r_ram.iter().zip(&r_file) {
            assert_eq!(a.best().unwrap().edge, b.best().unwrap().edge);
            assert_eq!(
                a.best().unwrap().log_likelihood.to_bits(),
                b.best().unwrap().log_likelihood.to_bits()
            );
        }
        // The file mode must report (much) less resident memory.
        assert!(rep_file.peak_memory < rep_ram.peak_memory);
    }

    #[test]
    fn agrees_with_epa_best_edges() {
        let (ctx, s2p, batch) = setup(12, 60, 3);
        let epa =
            epa_place::Placer::new(ctx, s2p.clone(), epa_place::EpaConfig::default()).unwrap();
        let (r_epa, _) = epa.place(&batch).unwrap();
        let (ctx2, _, _) = setup(12, 60, 3);
        let mut pp = PplacerLike::build(ctx2, s2p, PplacerConfig::default()).unwrap();
        let (r_pp, _) = pp.place(&batch).unwrap();
        for (a, b) in r_epa.iter().zip(&r_pp) {
            assert_eq!(
                a.best().unwrap().edge,
                b.best().unwrap().edge,
                "tools disagree on query {}",
                a.name
            );
        }
    }
}
