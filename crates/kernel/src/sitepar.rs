//! Across-site parallel kernel wrappers over a persistent worker pool.
//!
//! The paper's Fig. 7 "experimental" mode parallelizes CLV recomputation
//! over alignment sites instead of (only) overlapping it with placement
//! work. Because the CLV layout keeps patterns outermost, splitting the
//! pattern range splits every buffer into disjoint contiguous slices.
//!
//! Earlier revisions spawned (and joined) fresh OS threads on *every*
//! kernel call, which made site-parallel scoring scale negatively: the
//! per-call spawn cost dwarfed the per-chunk kernel work. The wrappers
//! now run on a [`SiteParPool`] — workers are spawned once, park on a
//! condvar between calls, and a call is just "publish a job, wake the
//! pool, help drain it". The caller thread always participates in the
//! drain, so a pool sized `n` uses `n - 1` parked workers plus the
//! caller, and on a single-core host (zero workers) every call runs
//! inline with no synchronization beyond two atomic bumps.
//!
//! Each chunk calls the dispatching serial kernels on its sub-range, so
//! the range split composes with kernel specialization *and* the tier
//! layer: DNA/protein chunks run the fused fixed-state or SIMD kernels
//! allocation-free, and only the generic fallback touches a transient
//! scratch.
//!
//! As the paper observes (§V-C), site parallelism still only pays off
//! for wide alignments — each chunk must amortize its share of the
//! wake/park handshake over `patterns / chunks` sites — but the
//! handshake is now hundreds of nanoseconds, not a thread spawn.

use crate::kernels::{update_partials, Side};
use crate::layout::Layout;
use crate::likelihood::edge_log_likelihood;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Splits `patterns` into at most `n_chunks` near-equal contiguous ranges.
pub fn split_ranges(patterns: usize, n_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let n_chunks = n_chunks.max(1).min(patterns.max(1));
    let base = patterns / n_chunks;
    let extra = patterns % n_chunks;
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Restricts a [`Side`] to a pattern range, producing a side whose pattern
/// indices are range-local.
fn slice_side<'a>(side: &Side<'a>, layout: &Layout, range: &std::ops::Range<usize>) -> Side<'a> {
    match *side {
        Side::Clv { clv, scale, pmatrix } => Side::Clv {
            clv: &clv[layout.clv_range(range)],
            scale: scale.map(|s| &s[range.clone()]),
            pmatrix,
        },
        Side::Tip { table, codes } => Side::Tip { table, codes: &codes[range.clone()] },
    }
}

/// A raw pointer that may cross threads. Used to hand each pool task its
/// own disjoint chunk of an output buffer; every dereference site states
/// the disjointness argument.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

/// One published batch of index-addressed tasks (`0..n_tasks`).
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` borrowed from the caller's
    /// stack. Valid until `pending` reaches zero, which [`SiteParPool::run`]
    /// waits for before returning; the pointer is only ever dereferenced
    /// for a claimed index, strictly before that index's `pending`
    /// decrement, so no dereference can happen after `run` returns.
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    cursor: AtomicUsize,
    n_tasks: usize,
    /// Tasks not yet *finished* (claimed-and-executed).
    pending: AtomicUsize,
    done_m: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: the raw `task` pointer is the only non-auto-Send/Sync field;
// its validity window is enforced by the `pending` protocol above.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes tasks until the cursor is exhausted.
    fn drain(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            // SAFETY: see the `task` field contract.
            unsafe { (*self.task)(i) };
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Lock-then-notify so a caller between its `pending`
                // check and `wait` cannot miss the wakeup.
                let _g = self.done_m.lock().unwrap();
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every task has finished.
    fn wait(&self) {
        let mut g = self.done_m.lock().unwrap();
        while self.pending.load(Ordering::Acquire) > 0 {
            g = self.done_cv.wait(g).unwrap();
        }
    }
}

struct PoolState {
    /// The most recently published job (workers help the latest; older
    /// jobs are finished by their own publishing callers).
    job: Option<Arc<Job>>,
    /// Bumped on every publish so workers can tell "new job" from "the
    /// job I just drained".
    epoch: u64,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    /// Workers currently parked on `work_cv`.
    parked: AtomicUsize,
    /// Pool-routed batches since creation.
    jobs: AtomicU64,
    /// Tasks executed (by workers and callers) since creation.
    tasks: AtomicU64,
}

/// Point-in-time pool counters, exported through the observability
/// registry by `placement::run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads owned by the pool (excludes participating callers).
    pub workers: usize,
    /// Workers currently parked waiting for work.
    pub parked: usize,
    /// Unclaimed tasks in the most recent job.
    pub queue_depth: usize,
    /// Batches routed through the pool.
    pub jobs: u64,
    /// Tasks executed across all batches.
    pub tasks: u64,
}

/// A persistent site-parallel worker pool: `requested - 1` worker threads
/// (clamped to the host's available parallelism) that park between calls.
///
/// Created once per run (the engine's store owns one; a lazily created
/// [`SiteParPool::global`] instance backs the free-function wrappers) so
/// thread startup is amortized across every kernel call of the run.
pub struct SiteParPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SiteParPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteParPool").field("workers", &self.handles.len()).finish()
    }
}

impl SiteParPool {
    /// A pool sized for `requested` concurrent chunk executors: the
    /// caller plus `min(requested, available_parallelism) - 1` parked
    /// workers. `requested <= 1` (or a single-core host) yields a pool
    /// with zero threads whose `run` executes inline.
    pub fn new(requested: usize) -> SiteParPool {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SiteParPool::spawn(requested.clamp(1, cores) - 1)
    }

    /// A pool with exactly `n_workers` threads, bypassing the host-core
    /// clamp — lets tests exercise the chunked paths on any host.
    #[cfg(test)]
    fn with_workers(n_workers: usize) -> SiteParPool {
        SiteParPool::spawn(n_workers)
    }

    fn spawn(n_workers: usize) -> SiteParPool {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState { job: None, epoch: 0, shutdown: false }),
            work_cv: Condvar::new(),
            parked: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        });
        let handles = (0..n_workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sitepar-{}", i + 1))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn sitepar worker")
            })
            .collect();
        SiteParPool { inner, handles }
    }

    /// The process-wide pool backing [`update_partials_par`] /
    /// [`edge_log_likelihood_par`], sized to the host parallelism and
    /// created on first use.
    pub fn global() -> &'static SiteParPool {
        static POOL: OnceLock<SiteParPool> = OnceLock::new();
        POOL.get_or_init(|| {
            SiteParPool::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        })
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        let queue_depth = {
            let st = self.inner.state.lock().unwrap();
            st.job
                .as_ref()
                .map(|j| j.n_tasks.saturating_sub(j.cursor.load(Ordering::Relaxed)))
                .unwrap_or(0)
        };
        PoolStats {
            workers: self.handles.len(),
            parked: self.inner.parked.load(Ordering::Relaxed),
            queue_depth,
            jobs: self.inner.jobs.load(Ordering::Relaxed),
            tasks: self.inner.tasks.load(Ordering::Relaxed),
        }
    }

    /// Executes `task(0..n_tasks)` across the pool; the calling thread
    /// participates and the call returns only when every task finished.
    /// Tasks must be independent (they run concurrently in any order).
    pub fn run(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        self.inner.jobs.fetch_add(1, Ordering::Relaxed);
        if self.handles.is_empty() || n_tasks == 1 {
            for i in 0..n_tasks {
                task(i);
            }
            self.inner.tasks.fetch_add(n_tasks as u64, Ordering::Relaxed);
            return;
        }
        // SAFETY: erase the borrow lifetime of `task`. The pointer is
        // dereferenced only for claimed indices, all of which complete
        // before `job.wait()` returns below, i.e. within the borrow.
        let task_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(Job {
            task: task_ptr,
            cursor: AtomicUsize::new(0),
            n_tasks,
            pending: AtomicUsize::new(n_tasks),
            done_m: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        {
            let mut st = self.inner.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(Arc::clone(&job));
        }
        self.inner.work_cv.notify_all();
        job.drain();
        self.inner.tasks.fetch_add(job.n_tasks as u64, Ordering::Relaxed);
        job.wait();
        // Unpublish so `task`'s borrow cannot outlive this call through
        // the pool state (workers holding stale Arcs see an exhausted
        // cursor and never touch the pointer again).
        let mut st = self.inner.state.lock().unwrap();
        if st.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
            st.job = None;
        }
    }

    /// Parallel [`update_partials`] over `n_chunks` contiguous pattern
    /// ranges. Falls back to one serial kernel call for a single chunk or
    /// tiny pattern counts.
    pub fn update_partials(
        &self,
        layout: &Layout,
        left: Side<'_>,
        right: Side<'_>,
        out: &mut [f64],
        out_scale: &mut [u32],
        n_chunks: usize,
    ) {
        // Chunking with no workers is pure overhead (the caller would
        // execute every chunk itself, paying the per-chunk slicing and
        // SIMD block-remainder cost with zero concurrency), so a
        // worker-less pool always runs the one-call serial kernel.
        if n_chunks <= 1 || layout.patterns < 2 * n_chunks || self.handles.is_empty() {
            update_partials(layout, left, right, out, out_scale, 0..layout.patterns);
            return;
        }
        let ranges = split_ranges(layout.patterns, n_chunks);
        let stride = layout.pattern_stride();
        debug_assert!(out.len() >= layout.clv_len() && out_scale.len() >= layout.patterns);
        let out_ptr = SendPtr(out.as_mut_ptr());
        let scale_ptr = SendPtr(out_scale.as_mut_ptr());
        self.run(ranges.len(), &|i| {
            let range = ranges[i].clone();
            let sub = layout.slice(range.clone());
            // SAFETY: the ranges are disjoint and contiguous, so each
            // task writes a private slice of `out` / `out_scale`, all
            // within the caller's exclusive borrows.
            let (out_chunk, scale_chunk) = unsafe {
                (
                    std::slice::from_raw_parts_mut(
                        out_ptr.get().add(range.start * stride),
                        range.len() * stride,
                    ),
                    std::slice::from_raw_parts_mut(scale_ptr.get().add(range.start), range.len()),
                )
            };
            let l = slice_side(&left, layout, &range);
            let r = slice_side(&right, layout, &range);
            update_partials(&sub, l, r, out_chunk, scale_chunk, 0..sub.patterns);
        });
    }

    /// Parallel [`edge_log_likelihood`] over `n_chunks` pattern ranges;
    /// partial sums are added in range order, so the result is
    /// deterministic for a fixed chunk count.
    #[allow(clippy::too_many_arguments)]
    pub fn edge_log_likelihood(
        &self,
        layout: &Layout,
        u_clv: &[f64],
        u_scale: Option<&[u32]>,
        v: Side<'_>,
        freqs: &[f64],
        rate_weights: &[f64],
        pattern_weights: &[u32],
        n_chunks: usize,
    ) -> f64 {
        if n_chunks <= 1 || layout.patterns < 2 * n_chunks || self.handles.is_empty() {
            return edge_log_likelihood(
                layout,
                u_clv,
                u_scale,
                v,
                freqs,
                rate_weights,
                pattern_weights,
                0..layout.patterns,
            );
        }
        let ranges = split_ranges(layout.patterns, n_chunks);
        let mut partials = vec![0.0f64; ranges.len()];
        let p_ptr = SendPtr(partials.as_mut_ptr());
        self.run(ranges.len(), &|i| {
            let range = ranges[i].clone();
            let sub = layout.slice(range.clone());
            let u = &u_clv[layout.clv_range(&range)];
            let us = u_scale.map(|x| &x[range.clone()]);
            let vv = slice_side(&v, layout, &range);
            let pw = &pattern_weights[range.clone()];
            let val =
                edge_log_likelihood(&sub, u, us, vv, freqs, rate_weights, pw, 0..sub.patterns);
            // SAFETY: task `i` exclusively owns `partials[i]`.
            unsafe { *p_ptr.get().add(i) = val };
        });
        partials.iter().sum()
    }
}

impl Drop for SiteParPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job.clone() {
                        break job;
                    }
                    // Job already unpublished (finished): nothing to help.
                    continue;
                }
                inner.parked.fetch_add(1, Ordering::Relaxed);
                st = inner.work_cv.wait(st).unwrap();
                inner.parked.fetch_sub(1, Ordering::Relaxed);
            }
        };
        job.drain();
    }
}

/// Parallel [`update_partials`] on the [`SiteParPool::global`] pool:
/// splits the pattern range into `n_threads` chunks. Falls back to the
/// serial kernel for one thread or tiny pattern counts.
pub fn update_partials_par(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    n_threads: usize,
) {
    SiteParPool::global().update_partials(layout, left, right, out, out_scale, n_threads)
}

/// Parallel [`edge_log_likelihood`] on the [`SiteParPool::global`] pool;
/// deterministic for a fixed `n_threads` (partial sums added in range
/// order).
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood_par(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    n_threads: usize,
) -> f64 {
    SiteParPool::global().edge_log_likelihood(
        layout,
        u_clv,
        u_scale,
        v,
        freqs,
        rate_weights,
        pattern_weights,
        n_threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tips::TipTable;

    const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

    fn jc_pmatrix(t: f64) -> Vec<f64> {
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let mut p = vec![diff; 16];
        for i in 0..4 {
            p[i * 4 + i] = same;
        }
        p
    }

    #[test]
    fn split_ranges_cover() {
        for patterns in [1usize, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(patterns, chunks);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, patterns);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_update() {
        let patterns = 101;
        let layout = Layout::new(patterns, 2, 4);
        let mut pm = jc_pmatrix(0.2);
        pm.extend(jc_pmatrix(0.6));
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes1: Vec<u8> = (0..patterns).map(|i| (i % 5) as u8).collect();
        let codes2: Vec<u8> = (0..patterns).map(|i| ((i * 3 + 1) % 5) as u8).collect();
        let left = Side::Tip { table: &table, codes: &codes1 };
        let right = Side::Tip { table: &table, codes: &codes2 };
        let mut serial = vec![0.0; layout.clv_len()];
        let mut serial_scale = vec![0u32; patterns];
        update_partials(&layout, left, right, &mut serial, &mut serial_scale, 0..patterns);
        // Unclamped pool: the chunked path runs even on a one-core host.
        let pool = SiteParPool::with_workers(2);
        for threads in [2usize, 3, 7] {
            let mut par = vec![0.0; layout.clv_len()];
            let mut par_scale = vec![0u32; patterns];
            pool.update_partials(&layout, left, right, &mut par, &mut par_scale, threads);
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(serial_scale, par_scale);
        }
        // The free-function wrapper (global pool, host-clamped) agrees too.
        let mut par = vec![0.0; layout.clv_len()];
        let mut par_scale = vec![0u32; patterns];
        update_partials_par(&layout, left, right, &mut par, &mut par_scale, 4);
        assert_eq!(serial, par);
        assert_eq!(serial_scale, par_scale);
    }

    #[test]
    fn parallel_matches_serial_loglik() {
        let patterns = 64;
        let layout = Layout::new(patterns, 1, 4);
        let pm = jc_pmatrix(0.4);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes: Vec<u8> = (0..patterns).map(|i| (i % 4) as u8).collect();
        let mut u_clv = vec![0.0; layout.clv_len()];
        for p in 0..patterns {
            u_clv[p * 4 + (p + 1) % 4] = 1.0;
        }
        let pw: Vec<u32> = (0..patterns).map(|i| 1 + (i % 3) as u32).collect();
        let freqs = [0.25; 4];
        let serial = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &pw,
            0..patterns,
        );
        // Unclamped pool: the chunked path runs even on a one-core host.
        let pool = SiteParPool::with_workers(2);
        for threads in [2usize, 4, 5] {
            let par = pool.edge_log_likelihood(
                &layout,
                &u_clv,
                None,
                Side::Tip { table: &table, codes: &codes },
                &freqs,
                &[1.0],
                &pw,
                threads,
            );
            assert!((serial - par).abs() < 1e-9, "threads={threads}: {serial} vs {par}");
        }
        let par = edge_log_likelihood_par(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &pw,
            3,
        );
        assert!((serial - par).abs() < 1e-9, "{serial} vs {par}");
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let layout = Layout::new(3, 1, 4);
        let pm = jc_pmatrix(0.2);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8, 1, 2];
        let mut out = vec![0.0; layout.clv_len()];
        let mut scale = vec![0u32; 3];
        update_partials_par(
            &layout,
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
            &mut out,
            &mut scale,
            8,
        );
        assert!(out.iter().any(|&v| v > 0.0));
    }

    /// The pool is the whole point: repeated calls must reuse it (no
    /// spawn per call) and its counters must reflect the traffic.
    #[test]
    fn pool_reuses_workers_and_counts_jobs() {
        let pool = SiteParPool::new(4);
        let stats0 = pool.stats();
        assert_eq!(stats0.jobs, 0);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(8, &|_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 80);
        let stats = pool.stats();
        assert_eq!(stats.jobs, 10);
        assert_eq!(stats.tasks, 80);
        assert_eq!(stats.queue_depth, 0, "all jobs drained");
        // Worker count is host-dependent but bounded by the request.
        assert!(stats.workers < 4);
    }

    /// Every task index is executed exactly once even when tasks outnumber
    /// pool threads many times over.
    #[test]
    fn pool_executes_each_task_exactly_once() {
        let pool = SiteParPool::new(3);
        let marks: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(marks.len(), &|i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, m) in marks.iter().enumerate() {
            assert_eq!(m.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    /// Dropping a pool must join its workers promptly (no deadlock).
    #[test]
    fn pool_shutdown_joins_workers() {
        let pool = SiteParPool::new(4);
        pool.run(4, &|_| {});
        drop(pool);
    }

    /// Concurrent `run` calls from independent threads may overlap; each
    /// caller must still see all of its own tasks complete.
    #[test]
    fn pool_survives_concurrent_callers() {
        let pool = SiteParPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        pool.run(7, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 7);
    }
}
