//! Across-site parallel kernel wrappers.
//!
//! The paper's Fig. 7 "experimental" mode parallelizes CLV recomputation
//! over alignment sites instead of (only) overlapping it with placement
//! work. Because the CLV layout keeps patterns outermost, splitting the
//! pattern range splits every buffer into disjoint contiguous slices, so
//! the parallel kernels are plain safe Rust over `chunks_mut`.
//!
//! As the paper observes (§V-C), this only pays off for wide alignments:
//! each thread must amortize its spawn/join over `patterns / threads`
//! sites.
//!
//! Each worker calls the dispatching serial kernels on its sub-range, so
//! the range split composes with kernel specialization: DNA/protein
//! chunks run the fused fixed-state kernels allocation-free, and only the
//! generic fallback touches a (per-spawn, transient) scratch — negligible
//! next to the thread spawn these wrappers already pay for.

use crate::kernels::{update_partials, Side};
use crate::layout::Layout;
use crate::likelihood::edge_log_likelihood;

/// Splits `patterns` into at most `n_chunks` near-equal contiguous ranges.
pub fn split_ranges(patterns: usize, n_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let n_chunks = n_chunks.max(1).min(patterns.max(1));
    let base = patterns / n_chunks;
    let extra = patterns % n_chunks;
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0;
    for i in 0..n_chunks {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Restricts a [`Side`] to a pattern range, producing a side whose pattern
/// indices are range-local.
fn slice_side<'a>(side: &Side<'a>, layout: &Layout, range: &std::ops::Range<usize>) -> Side<'a> {
    match *side {
        Side::Clv { clv, scale, pmatrix } => Side::Clv {
            clv: &clv[layout.clv_range(range)],
            scale: scale.map(|s| &s[range.clone()]),
            pmatrix,
        },
        Side::Tip { table, codes } => Side::Tip { table, codes: &codes[range.clone()] },
    }
}

/// Parallel [`update_partials`]: splits the pattern range across
/// `n_threads` OS threads. Falls back to the serial kernel for one thread
/// or tiny pattern counts.
pub fn update_partials_par(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    n_threads: usize,
) {
    if n_threads <= 1 || layout.patterns < 2 * n_threads {
        update_partials(layout, left, right, out, out_scale, 0..layout.patterns);
        return;
    }
    let ranges = split_ranges(layout.patterns, n_threads);
    let stride = layout.pattern_stride();
    std::thread::scope(|s| {
        let mut out_rest = out;
        let mut scale_rest = out_scale;
        for range in &ranges {
            let (out_chunk, tail) = out_rest.split_at_mut(range.len() * stride);
            out_rest = tail;
            let (scale_chunk, tail) = scale_rest.split_at_mut(range.len());
            scale_rest = tail;
            let sub = layout.slice(range.clone());
            let l = slice_side(&left, layout, range);
            let r = slice_side(&right, layout, range);
            s.spawn(move || {
                update_partials(&sub, l, r, out_chunk, scale_chunk, 0..sub.patterns);
            });
        }
    });
}

/// Parallel [`edge_log_likelihood`]: each thread sums its pattern range;
/// partial sums are added in range order so the result is deterministic
/// for a fixed thread count.
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood_par(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    n_threads: usize,
) -> f64 {
    if n_threads <= 1 || layout.patterns < 2 * n_threads {
        return edge_log_likelihood(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            0..layout.patterns,
        );
    }
    let ranges = split_ranges(layout.patterns, n_threads);
    let mut partials = vec![0.0f64; ranges.len()];
    std::thread::scope(|s| {
        for (range, slot) in ranges.iter().zip(partials.iter_mut()) {
            let sub = layout.slice(range.clone());
            let u = &u_clv[layout.clv_range(range)];
            let us = u_scale.map(|x| &x[range.clone()]);
            let vv = slice_side(&v, layout, range);
            let pw = &pattern_weights[range.clone()];
            s.spawn(move || {
                *slot =
                    edge_log_likelihood(&sub, u, us, vv, freqs, rate_weights, pw, 0..sub.patterns);
            });
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tips::TipTable;

    const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

    fn jc_pmatrix(t: f64) -> Vec<f64> {
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let mut p = vec![diff; 16];
        for i in 0..4 {
            p[i * 4 + i] = same;
        }
        p
    }

    #[test]
    fn split_ranges_cover() {
        for patterns in [1usize, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(patterns, chunks);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, patterns);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_update() {
        let patterns = 101;
        let layout = Layout::new(patterns, 2, 4);
        let mut pm = jc_pmatrix(0.2);
        pm.extend(jc_pmatrix(0.6));
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes1: Vec<u8> = (0..patterns).map(|i| (i % 5) as u8).collect();
        let codes2: Vec<u8> = (0..patterns).map(|i| ((i * 3 + 1) % 5) as u8).collect();
        let left = Side::Tip { table: &table, codes: &codes1 };
        let right = Side::Tip { table: &table, codes: &codes2 };
        let mut serial = vec![0.0; layout.clv_len()];
        let mut serial_scale = vec![0u32; patterns];
        update_partials(&layout, left, right, &mut serial, &mut serial_scale, 0..patterns);
        for threads in [2usize, 3, 7] {
            let mut par = vec![0.0; layout.clv_len()];
            let mut par_scale = vec![0u32; patterns];
            update_partials_par(&layout, left, right, &mut par, &mut par_scale, threads);
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(serial_scale, par_scale);
        }
    }

    #[test]
    fn parallel_matches_serial_loglik() {
        let patterns = 64;
        let layout = Layout::new(patterns, 1, 4);
        let pm = jc_pmatrix(0.4);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes: Vec<u8> = (0..patterns).map(|i| (i % 4) as u8).collect();
        let mut u_clv = vec![0.0; layout.clv_len()];
        for p in 0..patterns {
            u_clv[p * 4 + (p + 1) % 4] = 1.0;
        }
        let pw: Vec<u32> = (0..patterns).map(|i| 1 + (i % 3) as u32).collect();
        let freqs = [0.25; 4];
        let serial = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &pw,
            0..patterns,
        );
        for threads in [2usize, 4, 5] {
            let par = edge_log_likelihood_par(
                &layout,
                &u_clv,
                None,
                Side::Tip { table: &table, codes: &codes },
                &freqs,
                &[1.0],
                &pw,
                threads,
            );
            assert!((serial - par).abs() < 1e-9, "threads={threads}: {serial} vs {par}");
        }
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let layout = Layout::new(3, 1, 4);
        let pm = jc_pmatrix(0.2);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8, 1, 2];
        let mut out = vec![0.0; layout.clv_len()];
        let mut scale = vec![0u32; 3];
        update_partials_par(
            &layout,
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
            &mut out,
            &mut scale,
            8,
        );
        assert!(out.iter().any(|&v| v > 0.0));
    }
}
