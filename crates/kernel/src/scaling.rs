//! Numerical scaling constants.
//!
//! Conditional likelihoods decay exponentially with tree depth: on a
//! 20 000-taxon reference tree the raw per-site values underflow `f64` long
//! before reaching the root. The standard remedy (identical to libpll-2's)
//! is per-pattern scaling: whenever every entry of a pattern drops below
//! [`SCALE_THRESHOLD`], multiply the pattern by [`SCALE_FACTOR`] and
//! increment that pattern's scaler count. The log-likelihood then subtracts
//! `count · LN_SCALE` per site.

/// Patterns whose largest entry falls below this threshold get rescaled.
/// `2⁻²⁵⁶` leaves ample headroom above the `f64` denormal range.
pub const SCALE_THRESHOLD: f64 = 1.0 / SCALE_FACTOR;

/// The rescaling multiplier, `2²⁵⁶`.
pub const SCALE_FACTOR: f64 = 1.157920892373162e77;

/// `ln(SCALE_FACTOR) = 256 · ln 2`, subtracted per scaling event when
/// assembling log-likelihoods.
pub const LN_SCALE: f64 = 177.445_678_223_346;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert!((SCALE_FACTOR - 2f64.powi(256)).abs() / SCALE_FACTOR < 1e-15);
        assert!((LN_SCALE - SCALE_FACTOR.ln()).abs() < 1e-12);
        assert!((SCALE_THRESHOLD - 2f64.powi(-256)).abs() < 1e-90);
    }

    #[test]
    fn threshold_well_above_denormals() {
        assert!(SCALE_THRESHOLD > f64::MIN_POSITIVE * 1e100);
    }
}
