//! Explicit SIMD kernel tier: AVX2/FMA implementations of the fused
//! `update_partials` and `edge_log_likelihood` inner loops for the
//! compile-time state counts `S = 4` (DNA) and `S = 20` (protein).
//!
//! The backend is picked **once per process** ([`backend`]):
//!
//! * **AVX2** — requires both `avx2` and `fma` at runtime
//!   (`is_x86_feature_detected!`). The `S×S` matrix–vector propagation
//!   runs four output states per step with FMA-accumulated dot products,
//!   and the fused multiply + running-maximum pass is vectorized
//!   four lanes wide. FMA contracts `a*b+c` and the dot products reduce
//!   in tree order, so results are **not** bit-identical to the
//!   [`crate::reference`] oracle — the differential suite checks this
//!   tier under the log-domain tolerance contract documented in
//!   `DESIGN.md` §5c (per-element effective log within `1e-10`,
//!   log-likelihood totals within `1e-9·max(1, |lnL|)`; scaler counts
//!   may legitimately differ when the compared implementations land on
//!   opposite sides of the rescale threshold, which the log-domain
//!   comparison absorbs because `SCALE_FACTOR` is an exact power of 2).
//! * **Portable** — any other host, or `PHYLO_SIMD_PORTABLE=1` (the
//!   forced-fallback switch `scripts/ci.sh` tests). Delegates to the
//!   order-preserving [`crate::fixed`] kernels, so the portable path is
//!   bit-for-bit identical to the oracle.
//!
//! Only the two hot fused entry points get intrinsics; `propagate` and
//! `point_log_likelihood` under the SIMD tier run the `fixed`
//! implementations (see [`crate::kernels`] / [`crate::likelihood`]).

use crate::fixed;
use crate::kernels::Side;
use crate::layout::Layout;
use crate::scaling::{LN_SCALE, SCALE_THRESHOLD};

/// Which implementation the SIMD tier runs on this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// AVX2 + FMA intrinsics (tolerance contract vs the oracle).
    Avx2,
    /// Delegation to [`crate::fixed`] (bit-identical to the oracle).
    Portable,
}

impl SimdBackend {
    /// Stable lowercase name (metrics vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Portable => "portable",
        }
    }
}

/// True when `PHYLO_SIMD_PORTABLE=1` forces the portable fallback
/// (read once per process).
fn portable_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("PHYLO_SIMD_PORTABLE").map(|v| v == "1" || v == "true").unwrap_or(false)
    })
}

#[cfg(target_arch = "x86_64")]
fn host_has_avx2_fma() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn host_has_avx2_fma() -> bool {
    false
}

/// The backend the SIMD tier uses, decided once per process.
pub fn backend() -> SimdBackend {
    static BACKEND: std::sync::OnceLock<SimdBackend> = std::sync::OnceLock::new();
    *BACKEND.get_or_init(|| {
        if !portable_forced() && host_has_avx2_fma() {
            SimdBackend::Avx2
        } else {
            SimdBackend::Portable
        }
    })
}

/// Whether auto tier selection should pick the SIMD tier: the AVX2
/// backend is actually available (and not disabled via
/// `PHYLO_SIMD_PORTABLE`). When false, auto resolves to the fixed tier
/// instead — requesting `simd` explicitly is still safe (portable path).
pub fn runtime_supported() -> bool {
    backend() == SimdBackend::Avx2
}

/// Fused parent-CLV computation, SIMD tier. Same contract as
/// [`crate::fixed::update_partials`].
pub fn update_partials<const S: usize>(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2 {
        // SAFETY: backend() verified avx2+fma at runtime.
        unsafe { avx2::update_partials::<S>(layout, left, right, out, out_scale, range) };
        return;
    }
    fixed::update_partials::<S>(layout, left, right, out, out_scale, range)
}

/// Edge log-likelihood, SIMD tier. Same contract as
/// [`crate::fixed::edge_log_likelihood`].
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood<const S: usize>(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2 {
        // SAFETY: backend() verified avx2+fma at runtime.
        return unsafe {
            avx2::edge_log_likelihood::<S>(
                layout,
                u_clv,
                u_scale,
                v,
                freqs,
                rate_weights,
                pattern_weights,
                range,
            )
        };
    }
    fixed::edge_log_likelihood::<S>(
        layout,
        u_clv,
        u_scale,
        v,
        freqs,
        rate_weights,
        pattern_weights,
        range,
    )
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Patterns per cache block (matches [`crate::fixed`]).
    const PATTERN_BLOCK: usize = 16;

    /// `out[i..i+4] = Σ_j pm[(i..i+4)·S + j] · child[j]` for all `i`,
    /// four FMA-accumulated dot products at a time, combined with the
    /// hadd/permute butterfly. Requires `S % 4 == 0` (holds for 4, 20).
    ///
    /// SAFETY: caller guarantees avx2+fma, `pm` points at `S·S` f64s and
    /// `child`/`out` at `S` f64s.
    #[inline(always)]
    unsafe fn matvec<const S: usize>(pm: *const f64, child: *const f64, out: *mut f64) {
        debug_assert_eq!(S % 4, 0);
        let mut i = 0;
        while i < S {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let mut j = 0;
            while j < S {
                let c = _mm256_loadu_pd(child.add(j));
                a0 = _mm256_fmadd_pd(_mm256_loadu_pd(pm.add(i * S + j)), c, a0);
                a1 = _mm256_fmadd_pd(_mm256_loadu_pd(pm.add((i + 1) * S + j)), c, a1);
                a2 = _mm256_fmadd_pd(_mm256_loadu_pd(pm.add((i + 2) * S + j)), c, a2);
                a3 = _mm256_fmadd_pd(_mm256_loadu_pd(pm.add((i + 3) * S + j)), c, a3);
                j += 4;
            }
            // hadd pairs lanes within 128-bit halves; the permute swaps
            // halves so the final add yields [Σa0, Σa1, Σa2, Σa3].
            let h01 = _mm256_hadd_pd(a0, a1);
            let h23 = _mm256_hadd_pd(a2, a3);
            let lo = _mm256_permute2f128_pd(h01, h23, 0x20);
            let hi = _mm256_permute2f128_pd(h01, h23, 0x31);
            _mm256_storeu_pd(out.add(i), _mm256_add_pd(lo, hi));
            i += 4;
        }
    }

    /// One side's propagated likelihoods for a `(pattern, rate)` pair.
    /// Mirrors `fixed::SideProp`, with the CLV side vectorized.
    trait SidePropV<const S: usize>: Copy {
        /// SAFETY: caller guarantees avx2+fma are available.
        unsafe fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]);
    }

    #[derive(Clone, Copy)]
    struct TipPropV<'a> {
        table: &'a crate::tips::TipTable,
        codes: &'a [u8],
    }

    impl<const S: usize> SidePropV<S> for TipPropV<'_> {
        #[inline(always)]
        unsafe fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]) {
            out.copy_from_slice(self.table.code_rate(self.codes[pattern], rate));
        }
    }

    #[derive(Clone, Copy)]
    struct ClvPropV<'a> {
        clv: &'a [f64],
        pmatrix: &'a [f64],
        stride: usize,
    }

    impl<const S: usize> SidePropV<S> for ClvPropV<'_> {
        #[inline(always)]
        unsafe fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]) {
            let base = pattern * self.stride + rate * S;
            debug_assert!(base + S <= self.clv.len());
            debug_assert!((rate + 1) * S * S <= self.pmatrix.len());
            matvec::<S>(
                self.pmatrix.as_ptr().add(rate * S * S),
                self.clv.as_ptr().add(base),
                out.as_mut_ptr(),
            );
        }
    }

    #[inline(always)]
    fn side_scale<'a>(side: &Side<'a>) -> Option<&'a [u32]> {
        match side {
            Side::Clv { scale, .. } => *scale,
            Side::Tip { .. } => None,
        }
    }

    /// Horizontal maximum of a 4-lane vector.
    ///
    /// SAFETY: caller guarantees avx2.
    #[inline(always)]
    unsafe fn hmax(v: __m256d) -> f64 {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let m = _mm_max_pd(lo, hi);
        let s = _mm_max_sd(m, _mm_unpackhi_pd(m, m));
        _mm_cvtsd_f64(s)
    }

    /// AVX2 fused parent-CLV computation. Structure mirrors
    /// `fixed::update_partials` (four monomorphized side combinations,
    /// rate-outer blocks of 16 patterns, block-level scaling check).
    ///
    /// SAFETY: caller guarantees avx2+fma are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn update_partials<const S: usize>(
        layout: &Layout,
        left: Side<'_>,
        right: Side<'_>,
        out: &mut [f64],
        out_scale: &mut [u32],
        range: std::ops::Range<usize>,
    ) {
        debug_assert_eq!(layout.states, S);
        debug_assert_eq!(out.len(), layout.clv_len());
        debug_assert_eq!(out_scale.len(), layout.patterns);
        debug_assert!(range.end <= layout.patterns);
        let rates = layout.rates;
        let stride = layout.pattern_stride();
        let (lscale, rscale) = (side_scale(&left), side_scale(&right));
        match (left, right) {
            (Side::Tip { table: lt, codes: lc }, Side::Tip { table: rt, codes: rc }) => {
                update_fused::<S, _, _>(
                    rates,
                    stride,
                    TipPropV { table: lt, codes: lc },
                    TipPropV { table: rt, codes: rc },
                    lscale,
                    rscale,
                    out,
                    out_scale,
                    range,
                )
            }
            (Side::Tip { table: lt, codes: lc }, Side::Clv { clv, pmatrix, .. }) => {
                update_fused::<S, _, _>(
                    rates,
                    stride,
                    TipPropV { table: lt, codes: lc },
                    ClvPropV { clv, pmatrix, stride },
                    lscale,
                    rscale,
                    out,
                    out_scale,
                    range,
                )
            }
            (Side::Clv { clv, pmatrix, .. }, Side::Tip { table: rt, codes: rc }) => {
                update_fused::<S, _, _>(
                    rates,
                    stride,
                    ClvPropV { clv, pmatrix, stride },
                    TipPropV { table: rt, codes: rc },
                    lscale,
                    rscale,
                    out,
                    out_scale,
                    range,
                )
            }
            (
                Side::Clv { clv: lclv, pmatrix: lpm, .. },
                Side::Clv { clv: rclv, pmatrix: rpm, .. },
            ) => update_fused::<S, _, _>(
                rates,
                stride,
                ClvPropV { clv: lclv, pmatrix: lpm, stride },
                ClvPropV { clv: rclv, pmatrix: rpm, stride },
                lscale,
                rscale,
                out,
                out_scale,
                range,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn update_fused<const S: usize, L: SidePropV<S>, R: SidePropV<S>>(
        rates: usize,
        stride: usize,
        left: L,
        right: R,
        lscale: Option<&[u32]>,
        rscale: Option<&[u32]>,
        out: &mut [f64],
        out_scale: &mut [u32],
        range: std::ops::Range<usize>,
    ) {
        let mut p = range.start;
        while p < range.end {
            let block_end = (p + PATTERN_BLOCK).min(range.end);
            let mut maxs = [0.0f64; PATTERN_BLOCK];
            for r in 0..rates {
                for (k, pp) in (p..block_end).enumerate() {
                    let mut lv = [0.0f64; S];
                    let mut rv = [0.0f64; S];
                    left.prop(pp, r, &mut lv);
                    right.prop(pp, r, &mut rv);
                    let dst = out.as_mut_ptr().add(pp * stride + r * S);
                    let mut mv = _mm256_setzero_pd();
                    let mut i = 0;
                    while i < S {
                        let v = _mm256_mul_pd(
                            _mm256_loadu_pd(lv.as_ptr().add(i)),
                            _mm256_loadu_pd(rv.as_ptr().add(i)),
                        );
                        _mm256_storeu_pd(dst.add(i), v);
                        mv = _mm256_max_pd(mv, v);
                        i += 4;
                    }
                    maxs[k] = maxs[k].max(hmax(mv));
                }
            }
            for (k, pp) in (p..block_end).enumerate() {
                let mut scale = lscale.map_or(0, |s| s[pp]) + rscale.map_or(0, |s| s[pp]);
                let max = maxs[k];
                if max > 0.0 && max < SCALE_THRESHOLD {
                    scale += crate::fixed::rescale_pattern(
                        &mut out[pp * stride..(pp + 1) * stride],
                        max,
                    );
                }
                out_scale[pp] = scale;
            }
            p = block_end;
        }
    }

    /// `Σ_i freqs[i] · u[i] · v[i]` over `S` lanes (FMA-accumulated,
    /// tree-order reduction).
    ///
    /// SAFETY: caller guarantees avx2+fma; all pointers cover `S` f64s.
    #[inline(always)]
    unsafe fn weighted_dot<const S: usize>(freqs: *const f64, u: *const f64, v: *const f64) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < S {
            let fu = _mm256_mul_pd(_mm256_loadu_pd(freqs.add(i)), _mm256_loadu_pd(u.add(i)));
            acc = _mm256_fmadd_pd(fu, _mm256_loadu_pd(v.add(i)), acc);
            i += 4;
        }
        let hi = _mm256_extractf128_pd(acc, 1);
        let lo = _mm256_castpd256_pd128(acc);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// AVX2 edge log-likelihood (fused v-side propagation + weighted
    /// per-category dot).
    ///
    /// SAFETY: caller guarantees avx2+fma are available.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn edge_log_likelihood<const S: usize>(
        layout: &Layout,
        u_clv: &[f64],
        u_scale: Option<&[u32]>,
        v: Side<'_>,
        freqs: &[f64],
        rate_weights: &[f64],
        pattern_weights: &[u32],
        range: std::ops::Range<usize>,
    ) -> f64 {
        debug_assert_eq!(layout.states, S);
        debug_assert_eq!(u_clv.len(), layout.clv_len());
        debug_assert_eq!(freqs.len(), S);
        debug_assert_eq!(rate_weights.len(), layout.rates);
        debug_assert_eq!(pattern_weights.len(), layout.patterns);
        let stride = layout.pattern_stride();
        let vscale = side_scale(&v);
        match v {
            Side::Tip { table, codes } => edge_fused::<S, _>(
                layout.rates,
                stride,
                u_clv,
                u_scale,
                TipPropV { table, codes },
                vscale,
                freqs,
                rate_weights,
                pattern_weights,
                range,
            ),
            Side::Clv { clv, pmatrix, .. } => edge_fused::<S, _>(
                layout.rates,
                stride,
                u_clv,
                u_scale,
                ClvPropV { clv, pmatrix, stride },
                vscale,
                freqs,
                rate_weights,
                pattern_weights,
                range,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn edge_fused<const S: usize, V: SidePropV<S>>(
        rates: usize,
        stride: usize,
        u_clv: &[f64],
        u_scale: Option<&[u32]>,
        v: V,
        vscale: Option<&[u32]>,
        freqs: &[f64],
        rate_weights: &[f64],
        pattern_weights: &[u32],
        range: std::ops::Range<usize>,
    ) -> f64 {
        let mut total = 0.0f64;
        for p in range {
            let mut site = 0.0f64;
            for r in 0..rates {
                let mut buf = [0.0f64; S];
                v.prop(p, r, &mut buf);
                let cat = weighted_dot::<S>(
                    freqs.as_ptr(),
                    u_clv.as_ptr().add(p * stride + r * S),
                    buf.as_ptr(),
                );
                site += rate_weights[r] * cat;
            }
            let scale = u_scale.map_or(0, |s| s[p]) + vscale.map_or(0, |s| s[p]);
            total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_stable_and_consistent() {
        let b = backend();
        assert_eq!(b, backend(), "backend must be decided once");
        assert_eq!(runtime_supported(), b == SimdBackend::Avx2);
        assert!(matches!(b.name(), "avx2" | "portable"));
    }

    /// The SIMD entry points must run (and produce finite values) on
    /// whatever backend this host selects — the cross-tier numerical
    /// comparison lives in `tests/differential.rs`.
    #[test]
    fn simd_entry_points_run_on_selected_backend() {
        for states in [4usize, 20] {
            let layout = Layout::new(17, 3, states).with_tier(crate::layout::TierChoice::Simd);
            let mut pm = vec![0.0; layout.pmatrix_len()];
            for r in 0..layout.rates {
                for i in 0..states {
                    for j in 0..states {
                        pm[r * states * states + i * states + j] =
                            if i == j { 0.7 } else { 0.3 / (states as f64 - 1.0) };
                    }
                }
            }
            let clv: Vec<f64> =
                (0..layout.clv_len()).map(|i| 0.05 + (i % 11) as f64 * 0.07).collect();
            let mut out = vec![0.0; layout.clv_len()];
            let mut scale = vec![0u32; layout.patterns];
            let side = Side::Clv { clv: &clv, scale: None, pmatrix: &pm };
            match states {
                4 => update_partials::<4>(&layout, side, side, &mut out, &mut scale, 0..17),
                _ => update_partials::<20>(&layout, side, side, &mut out, &mut scale, 0..17),
            }
            assert!(out.iter().all(|v| v.is_finite() && *v > 0.0));
            let freqs = vec![1.0 / states as f64; states];
            let rw = vec![1.0 / 3.0; 3];
            let pw = vec![1u32; 17];
            let ll = match states {
                4 => edge_log_likelihood::<4>(&layout, &clv, None, side, &freqs, &rw, &pw, 0..17),
                _ => edge_log_likelihood::<20>(&layout, &clv, None, side, &freqs, &rw, &pw, 0..17),
            };
            assert!(ll.is_finite());
        }
    }
}
