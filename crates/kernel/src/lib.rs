//! Likelihood compute kernels — the numerical heart of the workspace.
//!
//! This crate is the Rust analogue of libpll-2's compute layer: it knows
//! nothing about trees or placement, only about **conditional likelihood
//! vectors** (CLVs) laid out as `[pattern][rate][state]` and the operations
//! the Felsenstein pruning algorithm performs on them:
//!
//! * [`kernels::update_partials`] — combine two child CLVs (or compact tip
//!   encodings) through per-rate transition matrices into a parent CLV,
//!   with per-pattern numerical scaling to survive trees with tens of
//!   thousands of taxa;
//! * [`likelihood::edge_log_likelihood`] — evaluate the tree likelihood at
//!   a branch from the two CLVs facing each other across it;
//! * [`likelihood::point_log_likelihood`] — the multi-way combination
//!   that scores a query-sequence insertion into a branch;
//! * [`tips::TipTable`] — precomputed per-character tip lookups that make
//!   tip children (and ambiguity codes) free in the inner loop;
//! * [`sitepar`] — across-site parallel wrappers (the paper's Fig. 7
//!   "experimental" mode) that split the pattern range over worker threads.
//!
//! CLV memory itself is owned by callers (the engine's stores or the AMC
//! slot arena); kernels only ever see slices, which is what lets one kernel
//! implementation serve full-memory, slot-managed, and file-backed modes.
//!
//! # Kernel dispatch
//!
//! Every public entry point is a dispatcher selected once per call from
//! [`layout::KernelKind`] (itself fixed at [`Layout`] construction from
//! the state count) and [`layout::KernelTier`]: DNA (`states == 4`) and
//! protein (`states == 20`) run the fused fixed-state kernels in
//! [`fixed`], or the AVX2/FMA kernels in [`simd`] when the SIMD tier is
//! active; everything else runs the generic scalar kernels in
//! [`reference`], which double as the bit-for-bit differential-test
//! oracle for the fast paths. The tier is resolved once per layout from
//! `--kernel-tier` / `PHYLO_KERNEL_TIER` / runtime CPU detection (see
//! [`layout::TierChoice`]); `reference` vs `fixed` is bit-identical,
//! the AVX2 path is tolerance-checked (FMA reassociation).

pub mod fixed;
pub mod kernels;
pub mod layout;
pub mod likelihood;
pub mod reference;
pub mod scaling;
pub mod scratch;
pub mod simd;
pub mod sitepar;
pub mod tips;

pub use layout::{KernelKind, KernelTier, Layout, TierChoice};
pub use scaling::{LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
pub use scratch::KernelScratch;
pub use tips::TipTable;
