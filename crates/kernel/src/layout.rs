//! CLV memory layout.

/// Which kernel implementation a [`Layout`] dispatches to. Selected once
/// at layout construction from the state count; every kernel entry point
/// branches on it exactly once per call, outside the pattern loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `states == 4`: fused DNA kernels with fixed-size inner loops.
    Dna4,
    /// `states == 20`: fused protein kernels with pattern-blocked
    /// (cache-friendly) transition-matrix access.
    Protein20,
    /// Any other state count: the generic scalar kernels.
    Generic,
}

impl KernelKind {
    /// The kind serving a given state count.
    pub fn for_states(states: usize) -> KernelKind {
        match states {
            4 => KernelKind::Dna4,
            20 => KernelKind::Protein20,
            _ => KernelKind::Generic,
        }
    }
}

/// Describes the shape of every CLV in a partitioned analysis:
/// `[pattern][rate][state]`, patterns outermost so that site ranges are
/// contiguous (which is what makes across-site parallelism a simple slice
/// split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of (compressed) site patterns.
    pub patterns: usize,
    /// Number of Γ rate categories.
    pub rates: usize,
    /// Number of character states (4 for DNA, 20 for protein).
    pub states: usize,
    /// Kernel implementation selected for this layout.
    kind: KernelKind,
}

impl Layout {
    /// Creates a layout; all dimensions must be non-zero.
    pub fn new(patterns: usize, rates: usize, states: usize) -> Self {
        assert!(patterns > 0 && rates > 0 && states > 0, "layout dimensions must be non-zero");
        Layout { patterns, rates, states, kind: KernelKind::for_states(states) }
    }

    /// The kernel implementation this layout dispatches to.
    #[inline]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Number of `f64` entries in one CLV.
    #[inline]
    pub fn clv_len(&self) -> usize {
        self.patterns * self.rates * self.states
    }

    /// Entries per pattern (`rates × states`).
    #[inline]
    pub fn pattern_stride(&self) -> usize {
        self.rates * self.states
    }

    /// Entries in one per-rate transition matrix block (`states²`).
    #[inline]
    pub fn pmatrix_block(&self) -> usize {
        self.states * self.states
    }

    /// Total entries in a per-edge probability matrix set
    /// (`rates × states²`).
    #[inline]
    pub fn pmatrix_len(&self) -> usize {
        self.rates * self.states * self.states
    }

    /// Bytes of one CLV (the unit of the paper's memory accounting).
    #[inline]
    pub fn clv_bytes(&self) -> usize {
        self.clv_len() * std::mem::size_of::<f64>()
    }

    /// Bytes of one per-pattern scaler vector.
    #[inline]
    pub fn scaler_bytes(&self) -> usize {
        self.patterns * std::mem::size_of::<u32>()
    }

    /// The sub-layout covering `range` of the patterns (for across-site
    /// work splitting).
    #[inline]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Layout {
        debug_assert!(range.end <= self.patterns);
        Layout { patterns: range.len(), rates: self.rates, states: self.states, kind: self.kind }
    }

    /// The f64 index range covering the given pattern range of a CLV.
    #[inline]
    pub fn clv_range(&self, range: &std::ops::Range<usize>) -> std::ops::Range<usize> {
        let s = self.pattern_stride();
        range.start * s..range.end * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        let l = Layout::new(100, 4, 4);
        assert_eq!(l.clv_len(), 1600);
        assert_eq!(l.pattern_stride(), 16);
        assert_eq!(l.pmatrix_len(), 64);
        assert_eq!(l.clv_bytes(), 12800);
        assert_eq!(l.scaler_bytes(), 400);
    }

    #[test]
    fn protein_layout() {
        let l = Layout::new(10, 4, 20);
        assert_eq!(l.clv_len(), 800);
        assert_eq!(l.pmatrix_block(), 400);
    }

    #[test]
    fn slicing() {
        let l = Layout::new(100, 2, 4);
        let sub = l.slice(10..30);
        assert_eq!(sub.patterns, 20);
        assert_eq!(l.clv_range(&(10..30)), 80..240);
        assert_eq!(sub.kind(), l.kind());
    }

    #[test]
    fn kind_follows_state_count() {
        assert_eq!(Layout::new(1, 1, 4).kind(), KernelKind::Dna4);
        assert_eq!(Layout::new(1, 1, 20).kind(), KernelKind::Protein20);
        assert_eq!(Layout::new(1, 1, 2).kind(), KernelKind::Generic);
        assert_eq!(Layout::new(1, 1, 61).kind(), KernelKind::Generic);
    }

    #[test]
    #[should_panic]
    fn zero_dims_rejected() {
        Layout::new(0, 4, 4);
    }
}
