//! CLV memory layout.

/// Which kernel *tier* a [`Layout`] dispatches to, orthogonal to the
/// state-count [`KernelKind`]. Resolved once at layout construction:
///
/// * [`KernelTier::Reference`] — the generic scalar oracle kernels, for
///   every state count. Bit-for-bit the definition of correctness.
/// * [`KernelTier::Fixed`] — const-generic fused kernels (S = 4 / 20),
///   order-preserving arithmetic, bit-identical to `Reference`.
/// * [`KernelTier::Simd`] — explicit AVX2/FMA intrinsics for S = 4 / 20
///   (`crate::simd`). FMA reassociates the inner dot products, so this
///   tier is *tolerance-checked* against the oracle, not bit-identical —
///   unless the portable fallback is active, which delegates to `Fixed`.
///
/// Layouts with [`KernelKind::Generic`] always run the reference
/// implementation regardless of tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Generic scalar kernels (the differential-test oracle).
    Reference,
    /// Const-generic fused kernels, bit-identical to `Reference`.
    Fixed,
    /// AVX2/FMA kernels (tolerance contract); portable fallback = `Fixed`.
    Simd,
}

impl KernelTier {
    /// Stable lowercase name (CLI/env/metrics vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Fixed => "fixed",
            KernelTier::Simd => "simd",
        }
    }
}

/// A tier *request*: what the user (CLI flag, `PHYLO_KERNEL_TIER` env
/// var) asked for, before runtime feature detection resolves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierChoice {
    /// Resolve from the environment, then CPU features: the env var if
    /// set, else [`KernelTier::Simd`] when AVX2+FMA are detected at
    /// runtime, else [`KernelTier::Fixed`].
    #[default]
    Auto,
    /// Force the generic scalar oracle.
    Reference,
    /// Force the const-generic fused kernels.
    Fixed,
    /// Force the SIMD module (which itself falls back to portable code
    /// on hosts without AVX2+FMA, so this is always safe to request).
    Simd,
}

impl TierChoice {
    /// Parses the CLI/env vocabulary (`auto|reference|fixed|simd`).
    pub fn parse(s: &str) -> Option<TierChoice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(TierChoice::Auto),
            "reference" => Some(TierChoice::Reference),
            "fixed" => Some(TierChoice::Fixed),
            "simd" => Some(TierChoice::Simd),
            _ => None,
        }
    }

    /// The `PHYLO_KERNEL_TIER` override, read once per process (invalid
    /// values fall back to `Auto` rather than aborting mid-run).
    pub fn from_env() -> TierChoice {
        static ENV: std::sync::OnceLock<TierChoice> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| {
            std::env::var("PHYLO_KERNEL_TIER")
                .ok()
                .and_then(|v| TierChoice::parse(&v))
                .unwrap_or(TierChoice::Auto)
        })
    }

    /// Resolves the request into a concrete tier. Priority: an explicit
    /// choice wins outright; `Auto` defers to the env var, then to
    /// runtime CPU feature detection (AVX2+FMA → `Simd`, else `Fixed`).
    pub fn resolve(self) -> KernelTier {
        match self {
            TierChoice::Reference => KernelTier::Reference,
            TierChoice::Fixed => KernelTier::Fixed,
            TierChoice::Simd => KernelTier::Simd,
            TierChoice::Auto => match TierChoice::from_env() {
                // Env `auto` (or unset): pick from CPU features.
                TierChoice::Auto => {
                    if crate::simd::runtime_supported() {
                        KernelTier::Simd
                    } else {
                        KernelTier::Fixed
                    }
                }
                explicit => explicit.resolve(),
            },
        }
    }
}

/// Which kernel implementation a [`Layout`] dispatches to. Selected once
/// at layout construction from the state count; every kernel entry point
/// branches on it exactly once per call, outside the pattern loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `states == 4`: fused DNA kernels with fixed-size inner loops.
    Dna4,
    /// `states == 20`: fused protein kernels with pattern-blocked
    /// (cache-friendly) transition-matrix access.
    Protein20,
    /// Any other state count: the generic scalar kernels.
    Generic,
}

impl KernelKind {
    /// The kind serving a given state count.
    pub fn for_states(states: usize) -> KernelKind {
        match states {
            4 => KernelKind::Dna4,
            20 => KernelKind::Protein20,
            _ => KernelKind::Generic,
        }
    }
}

/// Describes the shape of every CLV in a partitioned analysis:
/// `[pattern][rate][state]`, patterns outermost so that site ranges are
/// contiguous (which is what makes across-site parallelism a simple slice
/// split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of (compressed) site patterns.
    pub patterns: usize,
    /// Number of Γ rate categories.
    pub rates: usize,
    /// Number of character states (4 for DNA, 20 for protein).
    pub states: usize,
    /// Kernel implementation selected for this layout.
    kind: KernelKind,
    /// Kernel tier selected for this layout (see [`KernelTier`]).
    tier: KernelTier,
}

impl Layout {
    /// Creates a layout; all dimensions must be non-zero. The kernel
    /// tier resolves from `PHYLO_KERNEL_TIER` / runtime CPU detection
    /// (see [`TierChoice::resolve`]); use [`Layout::with_tier`] for an
    /// explicit override.
    pub fn new(patterns: usize, rates: usize, states: usize) -> Self {
        assert!(patterns > 0 && rates > 0 && states > 0, "layout dimensions must be non-zero");
        Layout {
            patterns,
            rates,
            states,
            kind: KernelKind::for_states(states),
            tier: TierChoice::Auto.resolve(),
        }
    }

    /// This layout with its tier re-resolved from an explicit request
    /// (`Auto` re-runs env + CPU detection, so it is priority-neutral).
    #[inline]
    pub fn with_tier(mut self, choice: TierChoice) -> Self {
        self.tier = choice.resolve();
        self
    }

    /// The kernel implementation this layout dispatches to.
    #[inline]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The kernel tier this layout dispatches to. [`KernelKind::Generic`]
    /// layouts run the reference kernels regardless of this value.
    #[inline]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Number of `f64` entries in one CLV.
    #[inline]
    pub fn clv_len(&self) -> usize {
        self.patterns * self.rates * self.states
    }

    /// Entries per pattern (`rates × states`).
    #[inline]
    pub fn pattern_stride(&self) -> usize {
        self.rates * self.states
    }

    /// Entries in one per-rate transition matrix block (`states²`).
    #[inline]
    pub fn pmatrix_block(&self) -> usize {
        self.states * self.states
    }

    /// Total entries in a per-edge probability matrix set
    /// (`rates × states²`).
    #[inline]
    pub fn pmatrix_len(&self) -> usize {
        self.rates * self.states * self.states
    }

    /// Bytes of one CLV (the unit of the paper's memory accounting).
    #[inline]
    pub fn clv_bytes(&self) -> usize {
        self.clv_len() * std::mem::size_of::<f64>()
    }

    /// Bytes of one per-pattern scaler vector.
    #[inline]
    pub fn scaler_bytes(&self) -> usize {
        self.patterns * std::mem::size_of::<u32>()
    }

    /// The sub-layout covering `range` of the patterns (for across-site
    /// work splitting).
    #[inline]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Layout {
        debug_assert!(range.end <= self.patterns);
        Layout {
            patterns: range.len(),
            rates: self.rates,
            states: self.states,
            kind: self.kind,
            tier: self.tier,
        }
    }

    /// The f64 index range covering the given pattern range of a CLV.
    #[inline]
    pub fn clv_range(&self, range: &std::ops::Range<usize>) -> std::ops::Range<usize> {
        let s = self.pattern_stride();
        range.start * s..range.end * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        let l = Layout::new(100, 4, 4);
        assert_eq!(l.clv_len(), 1600);
        assert_eq!(l.pattern_stride(), 16);
        assert_eq!(l.pmatrix_len(), 64);
        assert_eq!(l.clv_bytes(), 12800);
        assert_eq!(l.scaler_bytes(), 400);
    }

    #[test]
    fn protein_layout() {
        let l = Layout::new(10, 4, 20);
        assert_eq!(l.clv_len(), 800);
        assert_eq!(l.pmatrix_block(), 400);
    }

    #[test]
    fn slicing() {
        let l = Layout::new(100, 2, 4);
        let sub = l.slice(10..30);
        assert_eq!(sub.patterns, 20);
        assert_eq!(l.clv_range(&(10..30)), 80..240);
        assert_eq!(sub.kind(), l.kind());
    }

    #[test]
    fn kind_follows_state_count() {
        assert_eq!(Layout::new(1, 1, 4).kind(), KernelKind::Dna4);
        assert_eq!(Layout::new(1, 1, 20).kind(), KernelKind::Protein20);
        assert_eq!(Layout::new(1, 1, 2).kind(), KernelKind::Generic);
        assert_eq!(Layout::new(1, 1, 61).kind(), KernelKind::Generic);
    }

    #[test]
    #[should_panic]
    fn zero_dims_rejected() {
        Layout::new(0, 4, 4);
    }

    #[test]
    fn tier_choice_parse_vocabulary() {
        assert_eq!(TierChoice::parse("auto"), Some(TierChoice::Auto));
        assert_eq!(TierChoice::parse("Reference"), Some(TierChoice::Reference));
        assert_eq!(TierChoice::parse(" fixed "), Some(TierChoice::Fixed));
        assert_eq!(TierChoice::parse("SIMD"), Some(TierChoice::Simd));
        assert_eq!(TierChoice::parse("avx512"), None);
        assert_eq!(TierChoice::parse(""), None);
    }

    #[test]
    fn explicit_tier_overrides_resolution() {
        let l = Layout::new(8, 2, 4);
        assert_eq!(l.with_tier(TierChoice::Reference).tier(), KernelTier::Reference);
        assert_eq!(l.with_tier(TierChoice::Fixed).tier(), KernelTier::Fixed);
        assert_eq!(l.with_tier(TierChoice::Simd).tier(), KernelTier::Simd);
        // Auto lands on a concrete tier and slicing preserves it. Which
        // tier depends on the environment: PHYLO_KERNEL_TIER pins it
        // (ci.sh runs this suite once per value); unpinned, auto never
        // picks the reference oracle.
        let auto = l.with_tier(TierChoice::Auto);
        match std::env::var("PHYLO_KERNEL_TIER").ok().as_deref().and_then(TierChoice::parse) {
            Some(TierChoice::Reference) => assert_eq!(auto.tier(), KernelTier::Reference),
            Some(TierChoice::Fixed) => assert_eq!(auto.tier(), KernelTier::Fixed),
            Some(TierChoice::Simd) => assert_eq!(auto.tier(), KernelTier::Simd),
            _ => assert!(matches!(auto.tier(), KernelTier::Fixed | KernelTier::Simd)),
        }
        assert_eq!(auto.slice(1..5).tier(), auto.tier());
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(KernelTier::Reference.name(), "reference");
        assert_eq!(KernelTier::Fixed.name(), "fixed");
        assert_eq!(KernelTier::Simd.name(), "simd");
    }
}
