//! Log-likelihood evaluation from CLVs.
//!
//! Like [`crate::kernels`], the functions here dispatch once per call on
//! [`Layout::kind`] and [`Layout::tier`] to the fixed-state
//! implementations in [`crate::fixed`] (DNA/protein), the AVX2/FMA
//! implementations in [`crate::simd`] (SIMD tier, `edge_log_likelihood`
//! only — `point_log_likelihood` stays on `fixed`), or the generic oracle
//! in [`crate::reference`]. The scalar paths keep the pattern-outer /
//! rate-inner accumulation order, so their totals are bit-identical; the
//! AVX2 path reassociates the state-dimension dot product and is
//! tolerance-checked against the oracle instead.

use crate::kernels::Side;
use crate::layout::{KernelKind, KernelTier, Layout};
use crate::scratch::KernelScratch;
use crate::{fixed, reference, simd};

/// Evaluates the tree log-likelihood at a branch: one side is the CLV
/// *at* node `u` (unpropagated), the other is everything beyond the branch,
/// propagated through the branch's transition matrices.
///
/// `L_p = Σ_r w_r Σ_i π_i · u[p,r,i] · v_prop[p,r,i]`, summed over patterns
/// with their multiplicities and corrected for scaler counts.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn edge_log_likelihood(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    edge_log_likelihood_scratch(
        layout,
        u_clv,
        u_scale,
        v,
        freqs,
        rate_weights,
        pattern_weights,
        range,
        &mut KernelScratch::new(),
    )
}

/// [`edge_log_likelihood`] with a caller-owned scratch (zero allocation
/// per call on every dispatch path once the scratch is warm).
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood_scratch(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) -> f64 {
    match (layout.kind(), layout.tier()) {
        (KernelKind::Generic, _) | (_, KernelTier::Reference) => reference::edge_log_likelihood(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            range,
            scratch,
        ),
        (KernelKind::Dna4, KernelTier::Fixed) => fixed::edge_log_likelihood::<4>(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
        (KernelKind::Protein20, KernelTier::Fixed) => fixed::edge_log_likelihood::<20>(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
        (KernelKind::Dna4, KernelTier::Simd) => simd::edge_log_likelihood::<4>(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
        (KernelKind::Protein20, KernelTier::Simd) => simd::edge_log_likelihood::<20>(
            layout,
            u_clv,
            u_scale,
            v,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
    }
}

/// Evaluates the log-likelihood at a *point* where several sides meet —
/// the placement case: proximal subtree, distal subtree, and the pendant
/// query tip all propagated to the attachment node.
///
/// `L_p = Σ_r w_r Σ_i π_i · Π_s side_s_prop[p,r,i]`.
#[inline]
pub fn point_log_likelihood(
    layout: &Layout,
    sides: &[Side<'_>],
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    point_log_likelihood_scratch(
        layout,
        sides,
        freqs,
        rate_weights,
        pattern_weights,
        range,
        &mut KernelScratch::new(),
    )
}

/// [`point_log_likelihood`] with a caller-owned scratch.
pub fn point_log_likelihood_scratch(
    layout: &Layout,
    sides: &[Side<'_>],
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) -> f64 {
    // Multi-side points are off the hot path; the SIMD tier runs `fixed`.
    match (layout.kind(), layout.tier()) {
        (KernelKind::Generic, _) | (_, KernelTier::Reference) => reference::point_log_likelihood(
            layout,
            sides,
            freqs,
            rate_weights,
            pattern_weights,
            range,
            scratch,
        ),
        (KernelKind::Dna4, _) => fixed::point_log_likelihood::<4>(
            layout,
            sides,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
        (KernelKind::Protein20, _) => fixed::point_log_likelihood::<20>(
            layout,
            sides,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::LN_SCALE;
    use crate::tips::TipTable;

    const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

    /// JC69 P(t) as an explicit matrix.
    fn jc_pmatrix(t: f64) -> Vec<f64> {
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let mut p = vec![diff; 16];
        for i in 0..4 {
            p[i * 4 + i] = same;
        }
        p
    }

    /// Two-taxon likelihood under JC computed by hand:
    /// L = π_a P_ab(t) for concrete observed states a, b at distance t.
    #[test]
    fn two_taxon_edge_likelihood() {
        let layout = Layout::new(2, 1, 4);
        let t = 0.3;
        let pm = jc_pmatrix(t);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        // "u" is tip A's CLV *at* the node: indicator vectors.
        // patterns: (A,A) and (A,C)
        let mut u_clv = vec![0.0; layout.clv_len()];
        u_clv[0] = 1.0; // pattern 0: state A
        u_clv[4] = 1.0; // pattern 1: state A
        let codes_v = [0u8, 1]; // A, C
        let freqs = [0.25; 4];
        let rw = [1.0];
        let pw = [1u32, 1];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes_v },
            &freqs,
            &rw,
            &pw,
            0..2,
        );
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 * (0.25 + 0.75 * e);
        let diff = 0.25 * (0.25 - 0.25 * e);
        let expect = same.ln() + diff.ln();
        assert!((ll - expect).abs() < 1e-12, "{ll} vs {expect}");
    }

    #[test]
    fn pattern_weights_multiply() {
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.2);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let mut u_clv = vec![0.0; 4];
        u_clv[2] = 1.0; // G
        let codes = [2u8]; // G
        let freqs = [0.25; 4];
        let ll1 = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        let ll5 = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &[5],
            0..1,
        );
        assert!((ll5 - 5.0 * ll1).abs() < 1e-12);
    }

    #[test]
    fn scaler_counts_shift_loglik() {
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.1);
        let mut u_clv = vec![0.0; 4];
        u_clv[0] = 1.0;
        let v_clv = vec![0.25; 4];
        let freqs = [0.25; 4];
        let no_scale = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Clv { clv: &v_clv, scale: None, pmatrix: &pm },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        let scales = vec![2u32];
        let with_scale = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Clv { clv: &v_clv, scale: Some(&scales), pmatrix: &pm },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        assert!((no_scale - with_scale - 2.0 * LN_SCALE).abs() < 1e-10);
    }

    #[test]
    fn point_likelihood_three_tips() {
        // Tripod with all tips at distance t from the center, observing
        // A, A, A: L = Σ_i π_i P_iA(t)³.
        let layout = Layout::new(1, 1, 4);
        let t = 0.25;
        let pm = jc_pmatrix(t);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8];
        let freqs = [0.25; 4];
        let sides = [
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
        ];
        let ll = point_log_likelihood(&layout, &sides, &freqs, &[1.0], &[1], 0..1);
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let expect = (0.25 * (same.powi(3) + 3.0 * diff.powi(3))).ln();
        assert!((ll - expect).abs() < 1e-12, "{ll} vs {expect}");
    }

    #[test]
    fn impossible_data_gives_neg_infinity() {
        // Zero CLV (contradictory subtree) yields -inf log-likelihood.
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.0); // identity
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let u_clv = vec![0.0; 4];
        let codes = [0u8];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &[0.25; 4],
            &[1.0],
            &[1],
            0..1,
        );
        assert!(ll.is_infinite() && ll < 0.0);
    }

    #[test]
    fn rate_mixture_averages() {
        // Two rate categories with weights 0.5/0.5; mixture likelihood is
        // the average of per-category likelihoods.
        let layout = Layout::new(1, 2, 4);
        let mut pm = jc_pmatrix(0.1);
        pm.extend(jc_pmatrix(0.9));
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let mut u_clv = vec![0.0; 8];
        u_clv[0] = 1.0; // rate 0, state A
        u_clv[4] = 1.0; // rate 1, state A
        let codes = [0u8];
        let freqs = [0.25; 4];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[0.5, 0.5],
            &[1],
            0..1,
        );
        let lik = |t: f64| {
            let e = (-4.0 * t / 3.0f64).exp();
            0.25 * (0.25 + 0.75 * e)
        };
        let expect = (0.5 * lik(0.1) + 0.5 * lik(0.9)).ln();
        assert!((ll - expect).abs() < 1e-12);
    }
}
