//! Log-likelihood evaluation from CLVs.

use crate::kernels::Side;
use crate::layout::Layout;
use crate::scaling::LN_SCALE;

/// Evaluates the tree log-likelihood at a branch: one side is the CLV
/// *at* node `u` (unpropagated), the other is everything beyond the branch,
/// propagated through the branch's transition matrices.
///
/// `L_p = Σ_r w_r Σ_i π_i · u[p,r,i] · v_prop[p,r,i]`, summed over patterns
/// with their multiplicities and corrected for scaler counts.
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    debug_assert_eq!(u_clv.len(), layout.clv_len());
    debug_assert_eq!(freqs.len(), layout.states);
    debug_assert_eq!(rate_weights.len(), layout.rates);
    debug_assert_eq!(pattern_weights.len(), layout.patterns);
    let states = layout.states;
    let stride = layout.pattern_stride();
    let mut buf = vec![0.0f64; states];
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..layout.rates {
            propagate_into(&v, layout, p, r, &mut buf);
            let u = &u_clv[p * stride + r * states..p * stride + (r + 1) * states];
            let mut cat = 0.0;
            for i in 0..states {
                cat += freqs[i] * u[i] * buf[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale = u_scale.map_or(0, |s| s[p]) + v.scale_at(p);
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}

/// Evaluates the log-likelihood at a *point* where several sides meet —
/// the placement case: proximal subtree, distal subtree, and the pendant
/// query tip all propagated to the attachment node.
///
/// `L_p = Σ_r w_r Σ_i π_i · Π_s side_s_prop[p,r,i]`.
pub fn point_log_likelihood(
    layout: &Layout,
    sides: &[Side<'_>],
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    debug_assert!(!sides.is_empty());
    let states = layout.states;
    let mut acc = vec![0.0f64; states];
    let mut buf = vec![0.0f64; states];
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..layout.rates {
            propagate_into(&sides[0], layout, p, r, &mut acc);
            for side in &sides[1..] {
                propagate_into(side, layout, p, r, &mut buf);
                for (a, &b) in acc.iter_mut().zip(&buf) {
                    *a *= b;
                }
            }
            let mut cat = 0.0;
            for i in 0..states {
                cat += freqs[i] * acc[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale: u32 = sides.iter().map(|s| s.scale_at(p)).sum();
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}

#[inline]
fn propagate_into(side: &Side<'_>, layout: &Layout, pattern: usize, rate: usize, out: &mut [f64]) {
    let states = layout.states;
    match *side {
        Side::Clv { clv, pmatrix, .. } => {
            let base = pattern * layout.pattern_stride() + rate * states;
            let child = &clv[base..base + states];
            let pm = &pmatrix[rate * states * states..(rate + 1) * states * states];
            for (i, o) in out.iter_mut().enumerate() {
                let row = &pm[i * states..(i + 1) * states];
                let mut sum = 0.0;
                for (p, c) in row.iter().zip(child) {
                    sum += p * c;
                }
                *o = sum;
            }
        }
        Side::Tip { table, codes } => {
            out.copy_from_slice(table.code_rate(codes[pattern], rate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tips::TipTable;

    const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

    /// JC69 P(t) as an explicit matrix.
    fn jc_pmatrix(t: f64) -> Vec<f64> {
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let mut p = vec![diff; 16];
        for i in 0..4 {
            p[i * 4 + i] = same;
        }
        p
    }

    /// Two-taxon likelihood under JC computed by hand:
    /// L = π_a P_ab(t) for concrete observed states a, b at distance t.
    #[test]
    fn two_taxon_edge_likelihood() {
        let layout = Layout::new(2, 1, 4);
        let t = 0.3;
        let pm = jc_pmatrix(t);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        // "u" is tip A's CLV *at* the node: indicator vectors.
        // patterns: (A,A) and (A,C)
        let mut u_clv = vec![0.0; layout.clv_len()];
        u_clv[0] = 1.0; // pattern 0: state A
        u_clv[4] = 1.0; // pattern 1: state A
        let codes_v = [0u8, 1]; // A, C
        let freqs = [0.25; 4];
        let rw = [1.0];
        let pw = [1u32, 1];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes_v },
            &freqs,
            &rw,
            &pw,
            0..2,
        );
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 * (0.25 + 0.75 * e);
        let diff = 0.25 * (0.25 - 0.25 * e);
        let expect = same.ln() + diff.ln();
        assert!((ll - expect).abs() < 1e-12, "{ll} vs {expect}");
    }

    #[test]
    fn pattern_weights_multiply() {
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.2);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let mut u_clv = vec![0.0; 4];
        u_clv[2] = 1.0; // G
        let codes = [2u8]; // G
        let freqs = [0.25; 4];
        let ll1 = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        let ll5 = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[1.0],
            &[5],
            0..1,
        );
        assert!((ll5 - 5.0 * ll1).abs() < 1e-12);
    }

    #[test]
    fn scaler_counts_shift_loglik() {
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.1);
        let mut u_clv = vec![0.0; 4];
        u_clv[0] = 1.0;
        let v_clv = vec![0.25; 4];
        let freqs = [0.25; 4];
        let no_scale = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Clv { clv: &v_clv, scale: None, pmatrix: &pm },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        let scales = vec![2u32];
        let with_scale = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Clv { clv: &v_clv, scale: Some(&scales), pmatrix: &pm },
            &freqs,
            &[1.0],
            &[1],
            0..1,
        );
        assert!((no_scale - with_scale - 2.0 * LN_SCALE).abs() < 1e-10);
    }

    #[test]
    fn point_likelihood_three_tips() {
        // Tripod with all tips at distance t from the center, observing
        // A, A, A: L = Σ_i π_i P_iA(t)³.
        let layout = Layout::new(1, 1, 4);
        let t = 0.25;
        let pm = jc_pmatrix(t);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8];
        let freqs = [0.25; 4];
        let sides = [
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
        ];
        let ll = point_log_likelihood(&layout, &sides, &freqs, &[1.0], &[1], 0..1);
        let e = (-4.0 * t / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        let expect = (0.25 * (same.powi(3) + 3.0 * diff.powi(3))).ln();
        assert!((ll - expect).abs() < 1e-12, "{ll} vs {expect}");
    }

    #[test]
    fn impossible_data_gives_neg_infinity() {
        // Zero CLV (contradictory subtree) yields -inf log-likelihood.
        let layout = Layout::new(1, 1, 4);
        let pm = jc_pmatrix(0.0); // identity
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let u_clv = vec![0.0; 4];
        let codes = [0u8];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &[0.25; 4],
            &[1.0],
            &[1],
            0..1,
        );
        assert!(ll.is_infinite() && ll < 0.0);
    }

    #[test]
    fn rate_mixture_averages() {
        // Two rate categories with weights 0.5/0.5; mixture likelihood is
        // the average of per-category likelihoods.
        let layout = Layout::new(1, 2, 4);
        let mut pm = jc_pmatrix(0.1);
        pm.extend(jc_pmatrix(0.9));
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let mut u_clv = vec![0.0; 8];
        u_clv[0] = 1.0; // rate 0, state A
        u_clv[4] = 1.0; // rate 1, state A
        let codes = [0u8];
        let freqs = [0.25; 4];
        let ll = edge_log_likelihood(
            &layout,
            &u_clv,
            None,
            Side::Tip { table: &table, codes: &codes },
            &freqs,
            &[0.5, 0.5],
            &[1],
            0..1,
        );
        let lik = |t: f64| {
            let e = (-4.0 * t / 3.0f64).exp();
            0.25 * (0.25 + 0.75 * e)
        };
        let expect = (0.5 * lik(0.1) + 0.5 * lik(0.9)).ln();
        assert!((ll - expect).abs() < 1e-12);
    }
}
