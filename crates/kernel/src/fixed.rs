//! Specialized likelihood kernels for compile-time state counts.
//!
//! Monomorphized over `const S: usize` (instantiated for DNA `S = 4` and
//! protein `S = 20` by the dispatchers in [`crate::kernels`] /
//! [`crate::likelihood`]), these kernels keep every working value in
//! fixed-size stack arrays: the inner state loops have compile-time trip
//! counts, so the autovectorizer unrolls them into SIMD and no heap
//! scratch is ever needed.
//!
//! Differences from the [`crate::reference`] kernels — all arithmetic
//! order-preserving, so results stay bit-for-bit identical:
//!
//! * **Fusion.** `update_partials` propagates both sides and multiplies
//!   them in one pass per `(pattern, rate)` through `[f64; S]` stack
//!   arrays instead of filling `states`-long heap buffers side by side.
//! * **Pattern blocking.** Patterns are processed in blocks of
//!   [`PATTERN_BLOCK`], with the rate loop outside the in-block pattern
//!   loop. Each per-rate transition matrix (3.2 KiB for protein × one
//!   rate) is therefore reused across the whole block while hot in L1 —
//!   the cache-blocked pmatrix access that matters for `S = 20`, where
//!   the matrices no longer fit alongside the CLV stream.
//! * **Block-level scaling check.** Per-pattern maxima are accumulated
//!   during the fused write, and the underflow check runs once per block
//!   after it, outside the rate loop. The rescale itself is a `#[cold]`
//!   one-shot: the scaler count is derived from the maximum first, then
//!   applied per element — the same multiplication sequence the
//!   reference's iterative whole-stride loop performs, without rescanning
//!   the pattern per scaling level.

use crate::kernels::Side;
use crate::layout::Layout;
use crate::scaling::{LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::tips::TipTable;

/// Patterns per cache block of the fused update loop.
const PATTERN_BLOCK: usize = 16;

/// One side's propagated likelihood values for a `(pattern, rate)` pair,
/// written into a fixed-size stack array.
trait SideProp<const S: usize>: Copy {
    fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]);
}

/// Tip side: a `S`-wide row copy out of the per-edge lookup table.
#[derive(Clone, Copy)]
struct TipProp<'a> {
    table: &'a TipTable,
    codes: &'a [u8],
}

impl<const S: usize> SideProp<S> for TipProp<'_> {
    #[inline(always)]
    fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]) {
        out.copy_from_slice(self.table.code_rate(self.codes[pattern], rate));
    }
}

/// Inner-CLV side: an `S × S` matrix–vector product against the child CLV.
#[derive(Clone, Copy)]
struct ClvProp<'a> {
    clv: &'a [f64],
    pmatrix: &'a [f64],
    stride: usize,
}

impl<const S: usize> SideProp<S> for ClvProp<'_> {
    #[inline(always)]
    fn prop(&self, pattern: usize, rate: usize, out: &mut [f64; S]) {
        let base = pattern * self.stride + rate * S;
        let child: &[f64; S] = self.clv[base..base + S].try_into().unwrap();
        let pm = &self.pmatrix[rate * S * S..(rate + 1) * S * S];
        for (i, o) in out.iter_mut().enumerate() {
            let row: &[f64; S] = pm[i * S..(i + 1) * S].try_into().unwrap();
            let mut sum = 0.0;
            for j in 0..S {
                sum += row[j] * child[j];
            }
            *o = sum;
        }
    }
}

/// The per-pattern scaler counts a side contributes (`None` for tips and
/// unscaled CLVs).
#[inline(always)]
fn side_scale<'a>(side: &Side<'a>) -> Option<&'a [u32]> {
    match side {
        Side::Clv { scale, .. } => *scale,
        Side::Tip { .. } => None,
    }
}

/// One-shot rescale of a fully written pattern whose maximum underflowed
/// [`SCALE_THRESHOLD`]. Derives the scaling count from the maximum exactly
/// as the reference's iterative loop does (power-of-two multiplies are
/// exact), then applies that many [`SCALE_FACTOR`] multiplications per
/// element — the same per-element operation sequence, one pass.
#[cold]
#[inline(never)]
pub(crate) fn rescale_pattern(dst: &mut [f64], mut max: f64) -> u32 {
    let mut count = 0u32;
    while max > 0.0 && max < SCALE_THRESHOLD {
        max *= SCALE_FACTOR;
        count += 1;
    }
    for v in dst.iter_mut() {
        for _ in 0..count {
            *v *= SCALE_FACTOR;
        }
    }
    count
}

/// Fused, blocked parent-CLV computation for compile-time `S`.
pub fn update_partials<const S: usize>(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    debug_assert_eq!(layout.states, S);
    debug_assert_eq!(out.len(), layout.clv_len());
    debug_assert_eq!(out_scale.len(), layout.patterns);
    debug_assert!(range.end <= layout.patterns);
    let rates = layout.rates;
    let stride = layout.pattern_stride();
    let (lscale, rscale) = (side_scale(&left), side_scale(&right));
    // Monomorphize the four side combinations (libpll's tip-tip /
    // tip-inner / inner-inner split) so the pattern loop carries no
    // per-pattern dispatch.
    match (left, right) {
        (Side::Tip { table: lt, codes: lc }, Side::Tip { table: rt, codes: rc }) => {
            update_fused::<S, _, _>(
                rates,
                stride,
                TipProp { table: lt, codes: lc },
                TipProp { table: rt, codes: rc },
                lscale,
                rscale,
                out,
                out_scale,
                range,
            )
        }
        (Side::Tip { table: lt, codes: lc }, Side::Clv { clv, pmatrix, .. }) => {
            update_fused::<S, _, _>(
                rates,
                stride,
                TipProp { table: lt, codes: lc },
                ClvProp { clv, pmatrix, stride },
                lscale,
                rscale,
                out,
                out_scale,
                range,
            )
        }
        (Side::Clv { clv, pmatrix, .. }, Side::Tip { table: rt, codes: rc }) => {
            update_fused::<S, _, _>(
                rates,
                stride,
                ClvProp { clv, pmatrix, stride },
                TipProp { table: rt, codes: rc },
                lscale,
                rscale,
                out,
                out_scale,
                range,
            )
        }
        (Side::Clv { clv: lclv, pmatrix: lpm, .. }, Side::Clv { clv: rclv, pmatrix: rpm, .. }) => {
            update_fused::<S, _, _>(
                rates,
                stride,
                ClvProp { clv: lclv, pmatrix: lpm, stride },
                ClvProp { clv: rclv, pmatrix: rpm, stride },
                lscale,
                rscale,
                out,
                out_scale,
                range,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn update_fused<const S: usize, L: SideProp<S>, R: SideProp<S>>(
    rates: usize,
    stride: usize,
    left: L,
    right: R,
    lscale: Option<&[u32]>,
    rscale: Option<&[u32]>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    let mut p = range.start;
    while p < range.end {
        let block_end = (p + PATTERN_BLOCK).min(range.end);
        let mut maxs = [0.0f64; PATTERN_BLOCK];
        // Rate-outer over the block keeps each per-rate transition matrix
        // hot across PATTERN_BLOCK patterns. The per-pattern maximum is
        // order-independent (max commutes), so this reordering preserves
        // bit-identical results and scaler counts.
        for r in 0..rates {
            for (k, pp) in (p..block_end).enumerate() {
                let mut lv = [0.0f64; S];
                let mut rv = [0.0f64; S];
                left.prop(pp, r, &mut lv);
                right.prop(pp, r, &mut rv);
                let dst: &mut [f64; S] =
                    (&mut out[pp * stride + r * S..pp * stride + (r + 1) * S]).try_into().unwrap();
                let mut max = maxs[k];
                for i in 0..S {
                    let v = lv[i] * rv[i];
                    dst[i] = v;
                    max = max.max(v);
                }
                maxs[k] = max;
            }
        }
        // Block-level scaling check: one rarely-taken branch per pattern,
        // after all rates are written; the rescale itself is cold.
        for (k, pp) in (p..block_end).enumerate() {
            let mut scale = lscale.map_or(0, |s| s[pp]) + rscale.map_or(0, |s| s[pp]);
            let max = maxs[k];
            if max > 0.0 && max < SCALE_THRESHOLD {
                scale += rescale_pattern(&mut out[pp * stride..(pp + 1) * stride], max);
            }
            out_scale[pp] = scale;
        }
        p = block_end;
    }
}

/// One-side propagation for compile-time `S` (placement lookup tables and
/// attachment partials). Tip sides degenerate to straight row copies.
pub fn propagate<const S: usize>(
    layout: &Layout,
    side: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    debug_assert_eq!(layout.states, S);
    debug_assert_eq!(out.len(), layout.clv_len());
    debug_assert_eq!(out_scale.len(), layout.patterns);
    let rates = layout.rates;
    let stride = layout.pattern_stride();
    let scale = side_scale(&side);
    match side {
        Side::Tip { table, codes } => {
            for p in range {
                for r in 0..rates {
                    out[p * stride + r * S..p * stride + (r + 1) * S]
                        .copy_from_slice(table.code_rate(codes[p], r));
                }
                out_scale[p] = 0;
            }
        }
        Side::Clv { clv, pmatrix, .. } => {
            let prop = ClvProp { clv, pmatrix, stride };
            for p in range {
                for r in 0..rates {
                    let dst: &mut [f64; S] = (&mut out
                        [p * stride + r * S..p * stride + (r + 1) * S])
                        .try_into()
                        .unwrap();
                    SideProp::<S>::prop(&prop, p, r, dst);
                }
                out_scale[p] = scale.map_or(0, |s| s[p]);
            }
        }
    }
}

/// Edge log-likelihood for compile-time `S`.
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood<const S: usize>(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    debug_assert_eq!(layout.states, S);
    debug_assert_eq!(u_clv.len(), layout.clv_len());
    debug_assert_eq!(freqs.len(), S);
    debug_assert_eq!(rate_weights.len(), layout.rates);
    debug_assert_eq!(pattern_weights.len(), layout.patterns);
    let stride = layout.pattern_stride();
    let vscale = side_scale(&v);
    let freqs: &[f64; S] = freqs.try_into().unwrap();
    match v {
        Side::Tip { table, codes } => edge_fused::<S, _>(
            layout.rates,
            stride,
            u_clv,
            u_scale,
            TipProp { table, codes },
            vscale,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
        Side::Clv { clv, pmatrix, .. } => edge_fused::<S, _>(
            layout.rates,
            stride,
            u_clv,
            u_scale,
            ClvProp { clv, pmatrix, stride },
            vscale,
            freqs,
            rate_weights,
            pattern_weights,
            range,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn edge_fused<const S: usize, V: SideProp<S>>(
    rates: usize,
    stride: usize,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: V,
    vscale: Option<&[u32]>,
    freqs: &[f64; S],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..rates {
            let mut buf = [0.0f64; S];
            v.prop(p, r, &mut buf);
            let u: &[f64; S] =
                u_clv[p * stride + r * S..p * stride + (r + 1) * S].try_into().unwrap();
            let mut cat = 0.0;
            for i in 0..S {
                cat += freqs[i] * u[i] * buf[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale = u_scale.map_or(0, |s| s[p]) + vscale.map_or(0, |s| s[p]);
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}

/// Multi-side point log-likelihood for compile-time `S`. The side list is
/// dynamic (three sides in placement), so each side resolves through one
/// match per `(pattern, rate, side)` — still allocation-free, with the
/// state loops fixed-size.
pub fn point_log_likelihood<const S: usize>(
    layout: &Layout,
    sides: &[Side<'_>],
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
) -> f64 {
    debug_assert!(!sides.is_empty());
    debug_assert_eq!(layout.states, S);
    let stride = layout.pattern_stride();
    let freqs: &[f64; S] = freqs.try_into().unwrap();
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..layout.rates {
            let mut acc = [0.0f64; S];
            prop_side::<S>(&sides[0], stride, p, r, &mut acc);
            let mut buf = [0.0f64; S];
            for side in &sides[1..] {
                prop_side::<S>(side, stride, p, r, &mut buf);
                for i in 0..S {
                    acc[i] *= buf[i];
                }
            }
            let mut cat = 0.0;
            for i in 0..S {
                cat += freqs[i] * acc[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale: u32 = sides.iter().map(|s| s.scale_at(p)).sum();
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}

#[inline(always)]
fn prop_side<const S: usize>(
    side: &Side<'_>,
    stride: usize,
    p: usize,
    r: usize,
    out: &mut [f64; S],
) {
    match *side {
        Side::Tip { table, codes } => SideProp::<S>::prop(&TipProp { table, codes }, p, r, out),
        Side::Clv { clv, pmatrix, .. } => {
            SideProp::<S>::prop(&ClvProp { clv, pmatrix, stride }, p, r, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescale_matches_iterative_semantics() {
        // One level: values in (2^-512, 2^-256) need exactly one factor.
        let mut one = vec![SCALE_THRESHOLD * 0.5, SCALE_THRESHOLD * 0.25];
        assert_eq!(rescale_pattern(&mut one, SCALE_THRESHOLD * 0.5), 1);
        assert!(one.iter().all(|&v| v >= SCALE_THRESHOLD));
        // Multiple levels: a 2^-513 maximum needs two factors.
        let tiny = SCALE_THRESHOLD * SCALE_THRESHOLD * 0.5;
        let mut two = vec![tiny, tiny * 0.5];
        assert_eq!(rescale_pattern(&mut two, tiny), 2);
        assert!(two.iter().all(|&v| v > 0.0 && v.is_finite()));
        // All-zero patterns are untouched.
        let mut zero = vec![0.0; 4];
        assert_eq!(rescale_pattern(&mut zero, 0.0), 0);
        assert_eq!(zero, vec![0.0; 4]);
    }
}
