//! Reference kernels: the fully generic scalar implementations.
//!
//! These are the original, dimension-agnostic kernels (dynamic `states`
//! and `rates`, per-pattern dispatch through [`Side`]). They serve two
//! roles:
//!
//! 1. **Differential-test oracle.** The specialized DNA/protein kernels in
//!    [`crate::fixed`] must reproduce these bit-for-bit (see
//!    `tests/differential.rs`); any divergence is a bug in the fast path.
//! 2. **Generic fallback.** State counts with no specialized path (binary,
//!    codon, …) dispatch here from the public entry points in
//!    [`crate::kernels`] / [`crate::likelihood`].
//!
//! Working buffers come from a caller-owned [`KernelScratch`] so even the
//! fallback performs no per-call heap allocation on steady-state paths.
//! Scaling uses the original per-pattern iterative rescale loop — kept
//! deliberately independent from the fast path's one-shot cold rescale so
//! the differential suite exercises both derivations of the scaler count.

use crate::kernels::Side;
use crate::layout::Layout;
use crate::scaling::{LN_SCALE, SCALE_FACTOR, SCALE_THRESHOLD};
use crate::scratch::KernelScratch;

/// Generic [`crate::kernels::update_partials`]: computes a parent CLV over
/// `range` of the patterns with per-pattern scaler propagation.
pub fn update_partials(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) {
    debug_assert_eq!(out.len(), layout.clv_len());
    debug_assert_eq!(out_scale.len(), layout.patterns);
    debug_assert!(range.end <= layout.patterns);
    let states = layout.states;
    let stride = layout.pattern_stride();
    scratch.ensure(states);
    let lbuf = &mut scratch.lbuf[..states];
    let rbuf = &mut scratch.rbuf[..states];
    for p in range {
        let mut max = 0.0f64;
        for r in 0..layout.rates {
            left.propagate_pattern_rate(layout, p, r, lbuf);
            right.propagate_pattern_rate(layout, p, r, rbuf);
            let dst = &mut out[p * stride + r * states..p * stride + (r + 1) * states];
            for ((d, &l), &rv) in dst.iter_mut().zip(lbuf.iter()).zip(rbuf.iter()) {
                let v = l * rv;
                *d = v;
                max = max.max(v);
            }
        }
        let mut scale = left.scale_at(p) + right.scale_at(p);
        // Rescale the whole pattern while it is representable but tiny.
        while max > 0.0 && max < SCALE_THRESHOLD {
            let dst = &mut out[p * stride..(p + 1) * stride];
            for v in dst.iter_mut() {
                *v *= SCALE_FACTOR;
            }
            max *= SCALE_FACTOR;
            scale += 1;
        }
        out_scale[p] = scale;
    }
}

/// Generic [`crate::kernels::propagate`]: one side's propagated
/// likelihoods over `range`, with that side's scaler counts.
pub fn propagate(
    layout: &Layout,
    side: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) {
    debug_assert_eq!(out.len(), layout.clv_len());
    debug_assert_eq!(out_scale.len(), layout.patterns);
    let states = layout.states;
    let stride = layout.pattern_stride();
    scratch.ensure(states);
    let buf = &mut scratch.lbuf[..states];
    for p in range {
        for r in 0..layout.rates {
            side.propagate_pattern_rate(layout, p, r, buf);
            out[p * stride + r * states..p * stride + (r + 1) * states].copy_from_slice(buf);
        }
        out_scale[p] = side.scale_at(p);
    }
}

/// Generic [`crate::likelihood::edge_log_likelihood`].
#[allow(clippy::too_many_arguments)]
pub fn edge_log_likelihood(
    layout: &Layout,
    u_clv: &[f64],
    u_scale: Option<&[u32]>,
    v: Side<'_>,
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) -> f64 {
    debug_assert_eq!(u_clv.len(), layout.clv_len());
    debug_assert_eq!(freqs.len(), layout.states);
    debug_assert_eq!(rate_weights.len(), layout.rates);
    debug_assert_eq!(pattern_weights.len(), layout.patterns);
    let states = layout.states;
    let stride = layout.pattern_stride();
    scratch.ensure(states);
    let buf = &mut scratch.lbuf[..states];
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..layout.rates {
            v.propagate_pattern_rate(layout, p, r, buf);
            let u = &u_clv[p * stride + r * states..p * stride + (r + 1) * states];
            let mut cat = 0.0;
            for i in 0..states {
                cat += freqs[i] * u[i] * buf[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale = u_scale.map_or(0, |s| s[p]) + v.scale_at(p);
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}

/// Generic [`crate::likelihood::point_log_likelihood`].
pub fn point_log_likelihood(
    layout: &Layout,
    sides: &[Side<'_>],
    freqs: &[f64],
    rate_weights: &[f64],
    pattern_weights: &[u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) -> f64 {
    debug_assert!(!sides.is_empty());
    let states = layout.states;
    scratch.ensure(states);
    let acc = &mut scratch.acc[..states];
    let buf = &mut scratch.lbuf[..states];
    let mut total = 0.0f64;
    for p in range {
        let mut site = 0.0f64;
        for r in 0..layout.rates {
            sides[0].propagate_pattern_rate(layout, p, r, acc);
            for side in &sides[1..] {
                side.propagate_pattern_rate(layout, p, r, buf);
                for (a, &b) in acc.iter_mut().zip(buf.iter()) {
                    *a *= b;
                }
            }
            let mut cat = 0.0;
            for i in 0..states {
                cat += freqs[i] * acc[i];
            }
            site += rate_weights[r] * cat;
        }
        let scale: u32 = sides.iter().map(|s| s.scale_at(p)).sum();
        total += pattern_weights[p] as f64 * (site.ln() - scale as f64 * LN_SCALE);
    }
    total
}
