//! Reusable kernel scratch buffers.
//!
//! The generic (dynamic state count) kernels need per-call `states`-long
//! working buffers. Allocating them inside the kernels would put a heap
//! allocation on every CLV recomputation — exactly the cost the AMC slot
//! budget trades runtime for. A [`KernelScratch`] owns those buffers so a
//! caller that evaluates many (query × branch) pairs allocates at most
//! once, on first use.
//!
//! The specialized DNA/protein kernels keep their working state in
//! fixed-size stack arrays and never touch the scratch, so passing
//! [`KernelScratch::new`] (which allocates nothing) is free on those
//! paths.

use crate::layout::Layout;

/// Working buffers for the generic kernels. Cheap to construct (empty);
/// buffers grow on first use and are reused afterwards.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Left-side propagation buffer (`states` entries once used).
    pub(crate) lbuf: Vec<f64>,
    /// Right-side propagation buffer.
    pub(crate) rbuf: Vec<f64>,
    /// Accumulator for multi-side products ([`crate::likelihood::point_log_likelihood`]).
    pub(crate) acc: Vec<f64>,
}

impl KernelScratch {
    /// An empty scratch; performs no allocation.
    pub const fn new() -> Self {
        KernelScratch { lbuf: Vec::new(), rbuf: Vec::new(), acc: Vec::new() }
    }

    /// A scratch pre-sized for a layout, so even the first kernel call
    /// does not allocate.
    pub fn for_layout(layout: &Layout) -> Self {
        let mut s = Self::new();
        s.ensure(layout.states);
        s
    }

    /// Grows the buffers to hold `states` entries (no-op when already
    /// large enough).
    #[inline]
    pub(crate) fn ensure(&mut self, states: usize) {
        if self.lbuf.len() < states {
            self.lbuf.resize(states, 0.0);
            self.rbuf.resize(states, 0.0);
            self.acc.resize(states, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty_and_ensure_grows_once() {
        let mut s = KernelScratch::new();
        assert_eq!(s.lbuf.capacity(), 0);
        s.ensure(20);
        assert_eq!(s.lbuf.len(), 20);
        let ptr = s.lbuf.as_ptr();
        s.ensure(4);
        assert_eq!(s.lbuf.as_ptr(), ptr, "smaller request must not reallocate");
    }

    #[test]
    fn for_layout_presizes() {
        let s = KernelScratch::for_layout(&Layout::new(10, 2, 7));
        assert_eq!(s.lbuf.len(), 7);
        assert_eq!(s.rbuf.len(), 7);
        assert_eq!(s.acc.len(), 7);
    }
}
