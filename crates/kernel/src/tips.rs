//! Precomputed tip lookups.
//!
//! For a tip child with character code `c`, the propagated value at parent
//! state `i` is `Σ_{j ∈ mask(c)} P[i][j]` — it depends only on `(code,
//! rate, i)`, not on the pattern. Precomputing this table once per edge
//! turns every tip-child contribution into a single indexed load, and makes
//! IUPAC ambiguity codes exactly as cheap as concrete states. This is the
//! same trick libpll-2 applies for its tip-inner kernels.

use crate::layout::Layout;

/// Per-edge tip lookup: `data[code][rate][state]` = propagated likelihood
/// of observing `code` at the far end of the edge, given parent state.
#[derive(Debug, Clone)]
pub struct TipTable {
    n_codes: usize,
    rates: usize,
    states: usize,
    data: Vec<f64>,
}

impl Default for TipTable {
    fn default() -> Self {
        TipTable::empty()
    }
}

impl TipTable {
    /// An empty table holding no codes; a reusable seed for
    /// [`TipTable::rebuild`] on hot per-edge paths.
    pub const fn empty() -> TipTable {
        TipTable { n_codes: 0, rates: 0, states: 0, data: Vec::new() }
    }

    /// Builds the table from a per-rate transition matrix set
    /// (`pmatrix[rate · states² + i · states + j]`) and the alphabet's
    /// per-code state masks.
    pub fn build(layout: &Layout, pmatrix: &[f64], masks: &[u32]) -> TipTable {
        let mut t = TipTable::empty();
        t.rebuild(layout, pmatrix, masks);
        t
    }

    /// Rebuilds the table in place for a new edge (new transition
    /// matrices), reusing the existing allocation whenever the dimensions
    /// allow. Callers that sweep many edges keep one table and rebuild it
    /// per edge instead of allocating per edge.
    pub fn rebuild(&mut self, layout: &Layout, pmatrix: &[f64], masks: &[u32]) {
        let (rates, states) = (layout.rates, layout.states);
        debug_assert_eq!(pmatrix.len(), layout.pmatrix_len());
        let n_codes = masks.len();
        self.n_codes = n_codes;
        self.rates = rates;
        self.states = states;
        let len = n_codes * rates * states;
        // Shrink-or-grow without reallocating when capacity suffices; all
        // entries are overwritten below.
        self.data.clear();
        self.data.resize(len, 0.0);
        for (code, &mask) in masks.iter().enumerate() {
            for r in 0..rates {
                let pm = &pmatrix[r * states * states..(r + 1) * states * states];
                let out = &mut self.data
                    [code * rates * states + r * states..code * rates * states + (r + 1) * states];
                for (i, o) in out.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    let row = &pm[i * states..(i + 1) * states];
                    for (j, &p) in row.iter().enumerate() {
                        if (mask >> j) & 1 == 1 {
                            sum += p;
                        }
                    }
                    *o = sum;
                }
            }
        }
    }

    /// The `[rate][state]` block for one character code.
    #[inline]
    pub fn code_block(&self, code: u8) -> &[f64] {
        let stride = self.rates * self.states;
        &self.data[code as usize * stride..(code as usize + 1) * stride]
    }

    /// The `states`-long vector for one (code, rate) pair.
    #[inline]
    pub fn code_rate(&self, code: u8, rate: usize) -> &[f64] {
        let base = code as usize * self.rates * self.states + rate * self.states;
        &self.data[base..base + self.states]
    }

    /// Number of codes covered.
    #[inline]
    pub fn n_codes(&self) -> usize {
        self.n_codes
    }

    /// Heap bytes used (for memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity P-matrix over 4 states, 1 rate.
    fn identity_pmatrix() -> Vec<f64> {
        let mut p = vec![0.0; 16];
        for i in 0..4 {
            p[i * 4 + i] = 1.0;
        }
        p
    }

    #[test]
    fn identity_concrete_codes() {
        let layout = Layout::new(1, 1, 4);
        let masks = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];
        let t = TipTable::build(&layout, &identity_pmatrix(), &masks);
        // Concrete code j: lookup[i] = P[i][j] = δ_ij.
        for code in 0..4u8 {
            let v = t.code_rate(code, 0);
            for i in 0..4 {
                assert_eq!(v[i], if i == code as usize { 1.0 } else { 0.0 });
            }
        }
        // Fully ambiguous: row sums of identity = 1 everywhere.
        assert_eq!(t.code_rate(4, 0), &[1.0; 4]);
    }

    #[test]
    fn ambiguity_is_sum_of_columns() {
        let layout = Layout::new(1, 1, 4);
        // An arbitrary stochastic matrix.
        let p = vec![
            0.7, 0.1, 0.1, 0.1, //
            0.2, 0.5, 0.2, 0.1, //
            0.1, 0.2, 0.6, 0.1, //
            0.05, 0.05, 0.1, 0.8,
        ];
        let masks = [0b0001, 0b0010, 0b0100, 0b1000, 0b0101 /* A|G */];
        let t = TipTable::build(&layout, &p, &masks);
        for i in 0..4 {
            let expect = p[i * 4] + p[i * 4 + 2];
            assert!((t.code_rate(4, 0)[i] - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn multi_rate_blocks() {
        let layout = Layout::new(1, 2, 4);
        let mut p = identity_pmatrix();
        // Second rate category: uniform 0.25 matrix.
        p.extend(std::iter::repeat_n(0.25, 16));
        let masks = [0b0001, 0b0010, 0b0100, 0b1000];
        let t = TipTable::build(&layout, &p, &masks);
        assert_eq!(t.code_rate(0, 0), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.code_rate(0, 1), &[0.25; 4]);
        assert_eq!(t.code_block(0).len(), 8);
    }

    #[test]
    fn rebuild_reuses_allocation_and_matches_build() {
        let layout = Layout::new(1, 2, 4);
        let mut p1 = identity_pmatrix();
        p1.extend(std::iter::repeat_n(0.25, 16));
        let mut p2 = vec![0.1; 32];
        for i in 0..4 {
            p2[i * 4 + i] = 0.7;
            p2[16 + i * 4 + i] = 0.4;
        }
        let masks = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];
        let mut t = TipTable::build(&layout, &p1, &masks);
        let ptr = t.data.as_ptr();
        t.rebuild(&layout, &p2, &masks);
        assert_eq!(t.data.as_ptr(), ptr, "same-shape rebuild must not reallocate");
        let fresh = TipTable::build(&layout, &p2, &masks);
        assert_eq!(t.data, fresh.data);
        assert_eq!(t.n_codes(), 5);
    }
}
