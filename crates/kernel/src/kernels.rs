//! CLV update kernels (the Felsenstein pruning step).
//!
//! The public functions here are thin **dispatchers**: each branches once
//! per call on [`Layout::kind`] and [`Layout::tier`] (both selected at
//! layout construction) to one of the implementations —
//!
//! * [`crate::fixed`] for DNA (`states == 4`) and protein
//!   (`states == 20`): fused, pattern-blocked kernels with compile-time
//!   state counts and no heap scratch;
//! * [`crate::simd`] for the same state counts under the SIMD tier:
//!   AVX2/FMA intrinsics for the fused hot paths (`update_partials`
//!   here, `edge_log_likelihood` in [`crate::likelihood`]); the cooler
//!   entry points (`propagate`, `point_log_likelihood`) stay on `fixed`;
//! * [`crate::reference`] for every other state count — and for any
//!   layout whose tier is [`KernelTier::Reference`]: the generic scalar
//!   kernels, which double as the differential-test oracle.
//!
//! Every entry point has a `_scratch` variant taking a caller-owned
//! [`KernelScratch`]; the plain variants construct a transient empty
//! scratch, which allocates only when the generic path actually runs.

use crate::layout::{KernelKind, KernelTier, Layout};
use crate::scratch::KernelScratch;
use crate::tips::TipTable;
use crate::{fixed, reference, simd};

/// One side of a likelihood combination: the data flowing toward a node
/// across one of its edges.
#[derive(Clone, Copy)]
pub enum Side<'a> {
    /// An inner-node CLV propagated through the edge's per-rate transition
    /// matrices.
    Clv {
        /// Child CLV, `[pattern][rate][state]`.
        clv: &'a [f64],
        /// Child per-pattern scaler counts (`None` = all zero).
        scale: Option<&'a [u32]>,
        /// Per-rate transition matrices for the connecting edge.
        pmatrix: &'a [f64],
    },
    /// A tip: per-pattern character codes resolved through a precomputed
    /// [`TipTable`] (which already encodes the edge's transition
    /// matrices).
    Tip {
        /// Lookup built for the connecting edge.
        table: &'a TipTable,
        /// Per-pattern character codes.
        codes: &'a [u8],
    },
}

impl<'a> Side<'a> {
    /// The scaler count this side contributes at `pattern`.
    #[inline]
    pub fn scale_at(&self, pattern: usize) -> u32 {
        match self {
            Side::Clv { scale: Some(s), .. } => s[pattern],
            _ => 0,
        }
    }

    /// Writes this side's propagated likelihood for (`pattern`, `rate`)
    /// into `out` (`states` entries). The dynamic-dispatch primitive the
    /// generic kernels are built from.
    #[inline]
    pub(crate) fn propagate_pattern_rate(
        &self,
        layout: &Layout,
        pattern: usize,
        rate: usize,
        out: &mut [f64],
    ) {
        let states = layout.states;
        match *self {
            Side::Clv { clv, pmatrix, .. } => {
                let base = pattern * layout.pattern_stride() + rate * states;
                let child = &clv[base..base + states];
                let pm = &pmatrix[rate * states * states..(rate + 1) * states * states];
                for (i, o) in out.iter_mut().enumerate() {
                    let row = &pm[i * states..(i + 1) * states];
                    let mut sum = 0.0;
                    for (p, c) in row.iter().zip(child) {
                        sum += p * c;
                    }
                    *o = sum;
                }
            }
            Side::Tip { table, codes } => {
                out.copy_from_slice(table.code_rate(codes[pattern], rate));
            }
        }
    }
}

/// Computes a parent CLV over `range` of the patterns:
/// `out[p][r][i] = left_prop[i] · right_prop[i]`, with per-pattern scaler
/// propagation and rescaling.
///
/// `out`/`out_scale` are full-length buffers; only the entries covered by
/// `range` are written, so disjoint ranges may be filled concurrently (see
/// [`crate::sitepar`]).
#[inline]
pub fn update_partials(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    update_partials_scratch(layout, left, right, out, out_scale, range, &mut KernelScratch::new())
}

/// [`update_partials`] with a caller-owned scratch, guaranteeing zero heap
/// allocation per call on every dispatch path once the scratch is warm.
pub fn update_partials_scratch(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) {
    match (layout.kind(), layout.tier()) {
        (KernelKind::Generic, _) | (_, KernelTier::Reference) => {
            reference::update_partials(layout, left, right, out, out_scale, range, scratch)
        }
        (KernelKind::Dna4, KernelTier::Fixed) => {
            fixed::update_partials::<4>(layout, left, right, out, out_scale, range)
        }
        (KernelKind::Protein20, KernelTier::Fixed) => {
            fixed::update_partials::<20>(layout, left, right, out, out_scale, range)
        }
        (KernelKind::Dna4, KernelTier::Simd) => {
            simd::update_partials::<4>(layout, left, right, out, out_scale, range)
        }
        (KernelKind::Protein20, KernelTier::Simd) => {
            simd::update_partials::<20>(layout, left, right, out, out_scale, range)
        }
    }
}

/// Writes the propagated likelihoods of one side into `out`
/// (`[pattern][rate][state]` over `range`), accumulating that side's scaler
/// counts into `out_scale`. Used to build placement lookup tables and the
/// attachment-point partials.
#[inline]
pub fn propagate(
    layout: &Layout,
    side: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
) {
    propagate_scratch(layout, side, out, out_scale, range, &mut KernelScratch::new())
}

/// [`propagate`] with a caller-owned scratch.
pub fn propagate_scratch(
    layout: &Layout,
    side: Side<'_>,
    out: &mut [f64],
    out_scale: &mut [u32],
    range: std::ops::Range<usize>,
    scratch: &mut KernelScratch,
) {
    // `propagate` is off the hot path; the SIMD tier runs `fixed` here.
    match (layout.kind(), layout.tier()) {
        (KernelKind::Generic, _) | (_, KernelTier::Reference) => {
            reference::propagate(layout, side, out, out_scale, range, scratch)
        }
        (KernelKind::Dna4, _) => fixed::propagate::<4>(layout, side, out, out_scale, range),
        (KernelKind::Protein20, _) => fixed::propagate::<20>(layout, side, out, out_scale, range),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::{SCALE_FACTOR, SCALE_THRESHOLD};

    fn identity_pmatrix(states: usize, rates: usize) -> Vec<f64> {
        let mut p = vec![0.0; rates * states * states];
        for r in 0..rates {
            for i in 0..states {
                p[r * states * states + i * states + i] = 1.0;
            }
        }
        p
    }

    const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

    #[test]
    fn tip_tip_identity() {
        // With identity P-matrices, the parent CLV is the product of the
        // two tip indicator vectors.
        let layout = Layout::new(3, 1, 4);
        let pm = identity_pmatrix(4, 1);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes1 = [0u8, 1, 4]; // A, C, N
        let codes2 = [0u8, 2, 1]; // A, G, C
        let mut out = vec![0.0; layout.clv_len()];
        let mut scale = vec![0u32; 3];
        update_partials(
            &layout,
            Side::Tip { table: &table, codes: &codes1 },
            Side::Tip { table: &table, codes: &codes2 },
            &mut out,
            &mut scale,
            0..3,
        );
        // Pattern 0: A & A -> only state A survives.
        assert_eq!(&out[0..4], &[1.0, 0.0, 0.0, 0.0]);
        // Pattern 1: C & G -> contradiction, all zero.
        assert_eq!(&out[4..8], &[0.0; 4]);
        // Pattern 2: N & C -> state C.
        assert_eq!(&out[8..12], &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(scale, vec![0; 3]);
    }

    #[test]
    fn inner_child_propagation() {
        // Child CLV [0.5, 0.5, 0, 0] through a known P-matrix.
        let layout = Layout::new(1, 1, 4);
        #[rustfmt::skip]
        let pm = vec![
            0.7, 0.1, 0.1, 0.1,
            0.1, 0.7, 0.1, 0.1,
            0.1, 0.1, 0.7, 0.1,
            0.1, 0.1, 0.1, 0.7,
        ];
        let child = vec![0.5, 0.5, 0.0, 0.0];
        let cscale = vec![0u32];
        let idt = identity_pmatrix(4, 1);
        let table = TipTable::build(&layout, &idt, &DNA_MASKS);
        let codes = [4u8]; // N: right side contributes 1 everywhere
        let mut out = vec![0.0; 4];
        let mut scale = vec![0u32; 1];
        update_partials(
            &layout,
            Side::Clv { clv: &child, scale: Some(&cscale), pmatrix: &pm },
            Side::Tip { table: &table, codes: &codes },
            &mut out,
            &mut scale,
            0..1,
        );
        // left[i] = 0.5·(P[i][0] + P[i][1])
        let expect = [0.4, 0.4, 0.1, 0.1];
        for (o, e) in out.iter().zip(expect) {
            assert!((o - e).abs() < 1e-15);
        }
    }

    #[test]
    fn scaling_triggers_and_counts() {
        let layout = Layout::new(1, 1, 4);
        // A child CLV so tiny the product underflows the threshold.
        let tiny = SCALE_THRESHOLD * 1e-3;
        let child1 = vec![tiny; 4];
        let child2 = vec![1.0; 4];
        let s1 = vec![2u32];
        let s2 = vec![3u32];
        let pm = identity_pmatrix(4, 1);
        let mut out = vec![0.0; 4];
        let mut scale = vec![0u32; 1];
        update_partials(
            &layout,
            Side::Clv { clv: &child1, scale: Some(&s1), pmatrix: &pm },
            Side::Clv { clv: &child2, scale: Some(&s2), pmatrix: &pm },
            &mut out,
            &mut scale,
            0..1,
        );
        // Parent inherits 2 + 3 and adds one rescale.
        assert_eq!(scale[0], 6);
        for &v in &out {
            assert!(v >= SCALE_THRESHOLD && v.is_finite());
            assert!((v - tiny * SCALE_FACTOR).abs() / v < 1e-12);
        }
    }

    #[test]
    fn zero_pattern_does_not_loop() {
        let layout = Layout::new(1, 1, 4);
        let pm = identity_pmatrix(4, 1);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let mut out = vec![0.0; 4];
        let mut scale = vec![0u32; 1];
        // C & G through identity: impossible, all zeros; must terminate.
        update_partials(
            &layout,
            Side::Tip { table: &table, codes: &[1] },
            Side::Tip { table: &table, codes: &[2] },
            &mut out,
            &mut scale,
            0..1,
        );
        assert_eq!(out, vec![0.0; 4]);
        assert_eq!(scale[0], 0);
    }

    #[test]
    fn range_limits_writes() {
        let layout = Layout::new(4, 1, 4);
        let pm = identity_pmatrix(4, 1);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8, 1, 2, 3];
        let mut out = vec![-1.0; layout.clv_len()];
        let mut scale = vec![99u32; 4];
        update_partials(
            &layout,
            Side::Tip { table: &table, codes: &codes },
            Side::Tip { table: &table, codes: &codes },
            &mut out,
            &mut scale,
            1..3,
        );
        // Patterns 0 and 3 untouched.
        assert!(out[0..4].iter().all(|&v| v == -1.0));
        assert!(out[12..16].iter().all(|&v| v == -1.0));
        assert_eq!(scale[0], 99);
        assert_eq!(scale[3], 99);
        assert_eq!(scale[1], 0);
        // Pattern 1: C&C -> state C = 1.
        assert_eq!(out[4 + 1], 1.0);
    }

    #[test]
    fn propagate_matches_side_semantics() {
        let layout = Layout::new(2, 1, 4);
        #[rustfmt::skip]
        let pm = vec![
            0.7, 0.1, 0.1, 0.1,
            0.1, 0.7, 0.1, 0.1,
            0.1, 0.1, 0.7, 0.1,
            0.1, 0.1, 0.1, 0.7,
        ];
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes = [0u8, 3];
        let mut out = vec![0.0; layout.clv_len()];
        let mut scale = vec![0u32; 2];
        propagate(&layout, Side::Tip { table: &table, codes: &codes }, &mut out, &mut scale, 0..2);
        // Pattern 0 (A): column A of P.
        assert_eq!(&out[0..4], &[0.7, 0.1, 0.1, 0.1]);
        // Pattern 1 (T): column T of P.
        assert_eq!(&out[4..8], &[0.1, 0.1, 0.1, 0.7]);
    }

    #[test]
    fn generic_state_count_dispatches_to_reference() {
        // A binary alphabet exercises the Generic arm through the public
        // entry point; results must match a hand-computed product.
        let layout = Layout::new(2, 1, 2);
        assert_eq!(layout.kind(), KernelKind::Generic);
        let pm = identity_pmatrix(2, 1);
        let a = vec![0.5, 0.25, 1.0, 0.0];
        let b = vec![0.5, 2.0, 0.5, 1.0];
        let mut out = vec![0.0; layout.clv_len()];
        let mut scale = vec![0u32; 2];
        update_partials(
            &layout,
            Side::Clv { clv: &a, scale: None, pmatrix: &pm },
            Side::Clv { clv: &b, scale: None, pmatrix: &pm },
            &mut out,
            &mut scale,
            0..2,
        );
        assert_eq!(out, vec![0.25, 0.5, 0.5, 0.0]);
        assert_eq!(scale, vec![0, 0]);
    }
}
