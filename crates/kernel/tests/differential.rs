//! Differential tests: every dispatchable kernel tier must reproduce the
//! generic reference kernels, under the per-tier equivalence contract
//! documented in DESIGN.md §5c:
//!
//! * `reference` and `fixed` tiers are **bit-for-bit** identical — same
//!   CLV bits, same scaler counts, same log-likelihood bits — across
//!   random dimensions, side combinations, partial pattern ranges, and
//!   scaling-heavy tiny-likelihood inputs.
//! * The `simd` tier is **tolerance-checked**: FMA contraction and the
//!   vectorized horizontal reductions reassociate sums, so CLV elements
//!   are compared in the effective log domain (`ln v − scale·LN_SCALE`,
//!   absorbing legitimate ±1 scaler-count differences at the rescale
//!   threshold) within `1e-10`, exact zeroes must match exactly, and
//!   log-likelihood totals must agree within `1e-9 · max(1, |L|)`.
//!   `propagate` and `point_log_likelihood` run the fixed scalar path
//!   even under the `simd` tier, so they stay bit-exact on every tier.
//!
//! Tiers are pinned explicitly via `Layout::with_tier`, never inherited
//! from the environment, so the suite exercises all tiers regardless of
//! `PHYLO_KERNEL_TIER` or host CPU features (on non-AVX2 hosts the simd
//! tier falls back to the portable backend, which is bit-exact, and the
//! tolerance checks pass trivially).

use phylo_kernel::kernels::{self, Side};
use phylo_kernel::{likelihood, reference};
use phylo_kernel::{
    KernelKind, KernelScratch, KernelTier, Layout, TierChoice, TipTable, LN_SCALE, SCALE_THRESHOLD,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Per-element tolerance for simd-tier CLVs in the effective log domain.
const CLV_LOG_TOL: f64 = 1e-10;
/// Relative tolerance for simd-tier log-likelihood totals.
const LL_REL_TOL: f64 = 1e-9;

/// The bit-exact tiers: dispatched output must equal reference exactly.
const EXACT_TIERS: [TierChoice; 2] = [TierChoice::Reference, TierChoice::Fixed];

/// Every tier choice, for entry points that stay bit-exact on all tiers.
const ALL_TIERS: [TierChoice; 3] = [TierChoice::Reference, TierChoice::Fixed, TierChoice::Simd];

/// Deterministic input builder driven by the proptest shim's RNG.
struct Gen {
    rng: TestRng,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { rng: TestRng::from_seed(seed) }
    }

    /// A value in `(lo, hi)`; never exactly zero so products stay nonzero.
    fn val(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.unit_f64() * (hi - lo) + 1e-12
    }

    /// A roughly stochastic per-rate transition matrix set.
    fn pmatrix(&mut self, layout: &Layout) -> Vec<f64> {
        let s = layout.states;
        let mut pm = vec![0.0; layout.pmatrix_len()];
        for r in 0..layout.rates {
            for i in 0..s {
                let row = &mut pm[r * s * s + i * s..r * s * s + (i + 1) * s];
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = self.val(0.0, 1.0);
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        pm
    }

    /// A CLV; `tiny` scales whole patterns down near/below the scaling
    /// threshold so rescaling triggers.
    fn clv(&mut self, layout: &Layout, tiny: bool) -> Vec<f64> {
        let stride = layout.pattern_stride();
        let mut out = vec![0.0; layout.clv_len()];
        for p in 0..layout.patterns {
            let mag = if tiny && self.rng.below(2) == 0 {
                // Anywhere from "just above threshold" to "two rescales".
                SCALE_THRESHOLD.powf(self.val(0.5, 2.2))
            } else {
                1.0
            };
            for v in &mut out[p * stride..(p + 1) * stride] {
                *v = self.val(0.0, 1.0) * mag;
            }
        }
        out
    }

    /// Per-pattern inherited scaler counts.
    fn scales(&mut self, patterns: usize) -> Vec<u32> {
        (0..patterns).map(|_| self.rng.below(4) as u32).collect()
    }

    /// Per-pattern tip character codes over `n_codes` codes.
    fn codes(&mut self, patterns: usize, n_codes: usize) -> Vec<u8> {
        (0..patterns).map(|_| self.rng.below(n_codes as u64) as u8).collect()
    }

    /// A sub-range of the pattern space (sometimes partial, sometimes
    /// full).
    fn range(&mut self, patterns: usize) -> std::ops::Range<usize> {
        if self.rng.below(3) == 0 {
            0..patterns
        } else {
            let a = self.rng.below(patterns as u64) as usize;
            let b = self.rng.below(patterns as u64) as usize;
            a.min(b)..a.max(b) + 1
        }
    }
}

/// Concrete one-state masks plus a fully ambiguous code.
fn masks(states: usize) -> Vec<u32> {
    let mut m: Vec<u32> = (0..states).map(|j| 1u32 << j).collect();
    m.push((1u64 << states) as u32 - 1);
    m
}

/// Builds one side (tip or CLV) from the generator. Returned as owned
/// parts; `as_side` borrows them.
struct OwnedSide {
    tip: Option<(TipTable, Vec<u8>)>,
    clv: Option<(Vec<f64>, Vec<u32>, Vec<f64>)>,
}

impl OwnedSide {
    fn generate(g: &mut Gen, layout: &Layout, force_clv: bool, tiny: bool) -> OwnedSide {
        let pm = g.pmatrix(layout);
        if !force_clv && g.rng.below(2) == 0 {
            let m = masks(layout.states);
            let table = TipTable::build(layout, &pm, &m);
            let codes = g.codes(layout.patterns, m.len());
            OwnedSide { tip: Some((table, codes)), clv: None }
        } else {
            let clv = g.clv(layout, tiny);
            let scale = g.scales(layout.patterns);
            OwnedSide { tip: None, clv: Some((clv, scale, pm)) }
        }
    }

    fn as_side(&self) -> Side<'_> {
        match (&self.tip, &self.clv) {
            (Some((table, codes)), None) => Side::Tip { table, codes },
            (None, Some((clv, scale, pm))) => Side::Clv { clv, scale: Some(scale), pmatrix: pm },
            _ => unreachable!(),
        }
    }
}

/// Dispatched `update_partials` under one pinned tier.
fn run_update(
    layout: &Layout,
    left: Side<'_>,
    right: Side<'_>,
    range: std::ops::Range<usize>,
) -> (Vec<f64>, Vec<u32>) {
    let mut clv = vec![0.0; layout.clv_len()];
    let mut scale = vec![0u32; layout.patterns];
    kernels::update_partials(layout, left, right, &mut clv, &mut scale, range);
    (clv, scale)
}

/// Asserts two CLV buffers agree in the effective log domain within
/// `CLV_LOG_TOL` per element over `range`. Scale counts may legitimately
/// differ by rescale-threshold straddling, which the `scale·LN_SCALE`
/// subtraction absorbs exactly (the scale factor is a power of two, so a
/// shifted element's `ln` moves by exactly `LN_SCALE` up to f64 `ln`
/// accuracy). Exact zeroes must match exactly.
fn assert_clv_close(
    layout: &Layout,
    got: &[f64],
    got_scale: &[u32],
    want: &[f64],
    want_scale: &[u32],
    range: std::ops::Range<usize>,
    tier: KernelTier,
) {
    let stride = layout.pattern_stride();
    for p in range {
        let (cg, cw) = (got_scale[p] as f64, want_scale[p] as f64);
        for i in p * stride..(p + 1) * stride {
            let (a, b) = (got[i], want[i]);
            if a == 0.0 || b == 0.0 {
                assert!(
                    a == b,
                    "tier {tier:?}: zero/nonzero mismatch at f64 index {i}: {a} vs {b}"
                );
                continue;
            }
            let la = a.ln() - cg * LN_SCALE;
            let lb = b.ln() - cw * LN_SCALE;
            assert!(
                (la - lb).abs() <= CLV_LOG_TOL,
                "tier {tier:?}: CLV log mismatch at f64 index {i} (pattern {p}): \
                 {a} (scale {}) vs {b} (scale {}), log delta {:e}",
                got_scale[p],
                want_scale[p],
                (la - lb).abs()
            );
        }
    }
}

/// Runs dispatched-vs-reference `update_partials` on every tier: exact
/// tiers bit-for-bit, the simd tier under the documented log-domain
/// tolerance.
fn check_update(base: &Layout, left: Side<'_>, right: Side<'_>, range: std::ops::Range<usize>) {
    let mut oracle = vec![0.0; base.clv_len()];
    let mut oracle_scale = vec![0u32; base.patterns];
    let mut scratch = KernelScratch::new();
    reference::update_partials(
        base,
        left,
        right,
        &mut oracle,
        &mut oracle_scale,
        range.clone(),
        &mut scratch,
    );

    for choice in EXACT_TIERS {
        let layout = (*base).with_tier(choice);
        let (clv, scale) = run_update(&layout, left, right, range.clone());
        for (i, (a, b)) in clv.iter().zip(&oracle).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tier {choice:?}: CLV bit mismatch at f64 index {i} (range {range:?})"
            );
        }
        assert_eq!(scale, oracle_scale, "tier {choice:?}: scaler mismatch (range {range:?})");
    }

    let simd = (*base).with_tier(TierChoice::Simd);
    let (clv, scale) = run_update(&simd, left, right, range.clone());
    assert_clv_close(base, &clv, &scale, &oracle, &oracle_scale, range, simd.tier());
}

/// Runs dispatched-vs-reference `edge_log_likelihood` on every tier:
/// bit-exact on the scalar tiers, relative tolerance on simd.
#[allow(clippy::too_many_arguments)]
fn check_edge_ll(
    base: &Layout,
    u_clv: &[f64],
    u_scale: &[u32],
    v: Side<'_>,
    freqs: &[f64],
    rw: &[f64],
    pw: &[u32],
    range: std::ops::Range<usize>,
) {
    let mut scratch = KernelScratch::new();
    let oracle = reference::edge_log_likelihood(
        base,
        u_clv,
        Some(u_scale),
        v,
        freqs,
        rw,
        pw,
        range.clone(),
        &mut scratch,
    );

    for choice in EXACT_TIERS {
        let layout = (*base).with_tier(choice);
        let fast = likelihood::edge_log_likelihood(
            &layout,
            u_clv,
            Some(u_scale),
            v,
            freqs,
            rw,
            pw,
            range.clone(),
        );
        assert_eq!(fast.to_bits(), oracle.to_bits(), "tier {choice:?}: {fast} vs {oracle}");
    }

    let simd = (*base).with_tier(TierChoice::Simd);
    let fast =
        likelihood::edge_log_likelihood(&simd, u_clv, Some(u_scale), v, freqs, rw, pw, range);
    let tol = LL_REL_TOL * oracle.abs().max(1.0);
    assert!(
        (fast - oracle).abs() <= tol,
        "tier {:?}: log-likelihood mismatch {fast} vs {oracle} (delta {:e}, tol {tol:e})",
        simd.tier(),
        (fast - oracle).abs(),
    );
}

fn dims_to_layout(patterns: usize, rates: usize, states: usize) -> Layout {
    let layout = Layout::new(patterns, rates, states);
    assert_ne!(layout.kind(), KernelKind::Generic, "test must exercise a specialized path");
    layout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DNA update_partials over random side combinations and ranges.
    #[test]
    fn dna_update_partials_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..40,
        rates in 1usize..5,
    ) {
        let layout = dims_to_layout(patterns, rates, 4);
        let mut g = Gen::new(seed);
        let left = OwnedSide::generate(&mut g, &layout, false, false);
        let right = OwnedSide::generate(&mut g, &layout, false, false);
        let range = g.range(patterns);
        check_update(&layout, left.as_side(), right.as_side(), range);
    }

    /// Protein (states = 20) update_partials, multi-rate.
    #[test]
    fn protein_update_partials_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..24,
        rates in 1usize..5,
    ) {
        let layout = dims_to_layout(patterns, rates, 20);
        let mut g = Gen::new(seed);
        let left = OwnedSide::generate(&mut g, &layout, false, false);
        let right = OwnedSide::generate(&mut g, &layout, false, false);
        let range = g.range(patterns);
        check_update(&layout, left.as_side(), right.as_side(), range);
    }

    /// Scaling-heavy inputs: tiny CLVs on both sides force the rescale
    /// paths (one-shot cold rescale vs iterative loop) to agree — bit for
    /// bit on the scalar tiers, within the log-domain tolerance on simd,
    /// including multi-level rescales.
    #[test]
    fn scaling_heavy_update_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..32,
        rates in 1usize..4,
        protein in 0usize..2,
    ) {
        let states = if protein == 1 { 20 } else { 4 };
        let layout = dims_to_layout(patterns, rates, states);
        let mut g = Gen::new(seed);
        let left = OwnedSide::generate(&mut g, &layout, true, true);
        let right = OwnedSide::generate(&mut g, &layout, true, true);
        let range = g.range(patterns);
        check_update(&layout, left.as_side(), right.as_side(), range);
    }

    /// One-side propagation (lookup-table construction path). Bit-exact
    /// on every tier: the simd tier dispatches propagate to the fixed
    /// scalar kernels (it is off the placement hot path).
    #[test]
    fn propagate_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..40,
        rates in 1usize..5,
        protein in 0usize..2,
    ) {
        let states = if protein == 1 { 20 } else { 4 };
        let base = dims_to_layout(patterns, rates, states);
        let mut g = Gen::new(seed);
        let side = OwnedSide::generate(&mut g, &base, false, false);
        let range = g.range(patterns);

        let mut oracle = vec![0.0; base.clv_len()];
        let mut oracle_scale = vec![0u32; base.patterns];
        let mut scratch = KernelScratch::new();
        reference::propagate(
            &base,
            side.as_side(),
            &mut oracle,
            &mut oracle_scale,
            range.clone(),
            &mut scratch,
        );

        for choice in ALL_TIERS {
            let layout = base.with_tier(choice);
            let mut fast = vec![0.0; layout.clv_len()];
            let mut fast_scale = vec![0u32; layout.patterns];
            kernels::propagate(&layout, side.as_side(), &mut fast, &mut fast_scale, range.clone());
            for (a, b) in fast.iter().zip(&oracle) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(&fast_scale, &oracle_scale);
        }
    }

    /// Edge log-likelihood totals: bit-exact on the scalar tiers (same
    /// accumulation order on both paths), within relative tolerance on
    /// simd.
    #[test]
    fn edge_log_likelihood_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..40,
        rates in 1usize..5,
        protein in 0usize..2,
    ) {
        let states = if protein == 1 { 20 } else { 4 };
        let layout = dims_to_layout(patterns, rates, states);
        let mut g = Gen::new(seed);
        let u_tiny = g.rng.below(2) == 0;
        let u_clv = g.clv(&layout, u_tiny);
        let u_scale = g.scales(patterns);
        let v = OwnedSide::generate(&mut g, &layout, false, false);
        let mut freqs: Vec<f64> = (0..states).map(|_| g.val(0.0, 1.0)).collect();
        let fsum: f64 = freqs.iter().sum();
        freqs.iter_mut().for_each(|f| *f /= fsum);
        let rw: Vec<f64> = (0..rates).map(|_| 1.0 / rates as f64).collect();
        let pw: Vec<u32> = (0..patterns).map(|_| 1 + g.rng.below(4) as u32).collect();
        let range = g.range(patterns);

        check_edge_ll(&layout, &u_clv, &u_scale, v.as_side(), &freqs, &rw, &pw, range);
    }

    /// Three-way point log-likelihood (the placement evaluation).
    /// Bit-exact on every tier: the simd tier dispatches this entry point
    /// to the fixed scalar kernels.
    #[test]
    fn point_log_likelihood_matches_reference(
        seed in 0u64..u64::MAX,
        patterns in 1usize..32,
        rates in 1usize..4,
        protein in 0usize..2,
    ) {
        let states = if protein == 1 { 20 } else { 4 };
        let base = dims_to_layout(patterns, rates, states);
        let mut g = Gen::new(seed);
        let owned: Vec<OwnedSide> = (0..3)
            .map(|_| OwnedSide::generate(&mut g, &base, false, false))
            .collect();
        let sides: Vec<Side<'_>> = owned.iter().map(|o| o.as_side()).collect();
        let mut freqs: Vec<f64> = (0..states).map(|_| g.val(0.0, 1.0)).collect();
        let fsum: f64 = freqs.iter().sum();
        freqs.iter_mut().for_each(|f| *f /= fsum);
        let rw: Vec<f64> = (0..rates).map(|_| 1.0 / rates as f64).collect();
        let pw: Vec<u32> = (0..patterns).map(|_| 1 + g.rng.below(4) as u32).collect();
        let range = g.range(patterns);

        let mut scratch = KernelScratch::new();
        let oracle = reference::point_log_likelihood(
            &base, &sides, &freqs, &rw, &pw, range.clone(), &mut scratch,
        );
        for choice in ALL_TIERS {
            let layout = base.with_tier(choice);
            let fast = likelihood::point_log_likelihood(
                &layout, &sides, &freqs, &rw, &pw, range.clone(),
            );
            prop_assert_eq!(fast.to_bits(), oracle.to_bits(), "{:?}: {} vs {}", choice, fast, oracle);
        }
    }
}

/// A deterministic worst case: every pattern underflows several scaling
/// levels at once, on both the DNA and the protein path, on every tier.
#[test]
fn deep_rescale_bit_exact() {
    for states in [4usize, 20] {
        let base = Layout::new(8, 3, states);
        let mut g = Gen::new(0xDEADBEEF);
        let pm_l = g.pmatrix(&base);
        let pm_r = g.pmatrix(&base);
        let stride = base.pattern_stride();
        let mut clv_l = vec![0.0; base.clv_len()];
        let mut clv_r = vec![0.0; base.clv_len()];
        for p in 0..base.patterns {
            // Left ~ 2^-300·u, right ~ 2^-280·u: the product sits around
            // 2^-580, needing two+ rescale levels.
            for v in &mut clv_l[p * stride..(p + 1) * stride] {
                *v = g.val(0.0, 1.0) * 2.0f64.powi(-300);
            }
            for v in &mut clv_r[p * stride..(p + 1) * stride] {
                *v = g.val(0.0, 1.0) * 2.0f64.powi(-280);
            }
        }
        let ls = g.scales(base.patterns);
        let rs = g.scales(base.patterns);
        let left = Side::Clv { clv: &clv_l, scale: Some(&ls), pmatrix: &pm_l };
        let right = Side::Clv { clv: &clv_r, scale: Some(&rs), pmatrix: &pm_r };
        // Every tier must actually deep-rescale ≥ 2 levels beyond the
        // inherited counts, or the test is vacuous for that tier.
        for choice in ALL_TIERS {
            let layout = base.with_tier(choice);
            let (_, scale) = run_update(&layout, left, right, 0..8);
            for p in 0..8 {
                assert!(
                    scale[p] >= ls[p] + rs[p] + 2,
                    "tier {choice:?}: pattern {p} did not deep-rescale"
                );
            }
        }
        check_update(&base, left, right, 0..8);
    }
}
