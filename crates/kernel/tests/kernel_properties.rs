//! Property tests for the likelihood kernels.

use phylo_kernel::kernels::{update_partials, Side};
use phylo_kernel::likelihood::edge_log_likelihood;
use phylo_kernel::{Layout, TipTable, LN_SCALE, SCALE_FACTOR};
use proptest::prelude::*;

const DNA_MASKS: [u32; 5] = [0b0001, 0b0010, 0b0100, 0b1000, 0b1111];

/// A JC-like stochastic matrix for an arbitrary "time" parameter.
fn stochastic_pmatrix(t: f64, rates: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(rates * 16);
    for r in 0..rates {
        let tr = t * (0.5 + r as f64);
        let e = (-4.0 * tr / 3.0f64).exp();
        let same = 0.25 + 0.75 * e;
        let diff = 0.25 - 0.25 * e;
        for i in 0..4 {
            for j in 0..4 {
                out.push(if i == j { same } else { diff });
            }
        }
    }
    out
}

fn arb_clv(patterns: usize, rates: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, patterns * rates * 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parent CLV is symmetric in its two children.
    #[test]
    fn update_partials_child_symmetry(
        patterns in 1usize..12,
        rates in 1usize..3,
        t1 in 0.01f64..1.0,
        t2 in 0.01f64..1.0,
        seed in 0u64..100,
    ) {
        let layout = Layout::new(patterns, rates, 4);
        let mk = |s: u64| -> Vec<f64> {
            (0..layout.clv_len())
                .map(|i| 0.05 + (((i as u64 + 1) * (s + 3)) % 97) as f64 / 100.0)
                .collect()
        };
        let c1 = mk(seed);
        let c2 = mk(seed + 7);
        let p1 = stochastic_pmatrix(t1, rates);
        let p2 = stochastic_pmatrix(t2, rates);
        let mut out_a = vec![0.0; layout.clv_len()];
        let mut scale_a = vec![0u32; patterns];
        update_partials(
            &layout,
            Side::Clv { clv: &c1, scale: None, pmatrix: &p1 },
            Side::Clv { clv: &c2, scale: None, pmatrix: &p2 },
            &mut out_a,
            &mut scale_a,
            0..patterns,
        );
        let mut out_b = vec![0.0; layout.clv_len()];
        let mut scale_b = vec![0u32; patterns];
        update_partials(
            &layout,
            Side::Clv { clv: &c2, scale: None, pmatrix: &p2 },
            Side::Clv { clv: &c1, scale: None, pmatrix: &p1 },
            &mut out_b,
            &mut scale_b,
            0..patterns,
        );
        for (a, b) in out_a.iter().zip(&out_b) {
            prop_assert!((a - b).abs() <= 1e-15 * a.abs().max(1.0));
        }
        prop_assert_eq!(scale_a, scale_b);
    }

    /// Pre-scaling a child by `SCALE_FACTOR^k` (with matching scaler
    /// counts) leaves the final log-likelihood unchanged.
    #[test]
    fn scaling_is_likelihood_neutral(
        patterns in 1usize..10,
        k in 1u32..3,
        t in 0.01f64..1.0,
        clv in arb_clv(6, 1),
    ) {
        let patterns = patterns.min(6);
        let layout = Layout::new(patterns, 1, 4);
        let clv = &clv[..layout.clv_len()];
        let pm = stochastic_pmatrix(t, 1);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes: Vec<u8> = (0..patterns).map(|i| (i % 4) as u8).collect();
        let pw = vec![1u32; patterns];
        let freqs = [0.25; 4];

        let base = edge_log_likelihood(
            &layout, clv, None,
            Side::Tip { table: &table, codes: &codes },
            &freqs, &[1.0], &pw, 0..patterns,
        );
        // Scale the CLV up by SCALE_FACTOR^k and record k in the scaler.
        let scaled: Vec<f64> =
            clv.iter().map(|&v| v * SCALE_FACTOR.powi(k as i32)).collect();
        let scales = vec![k; patterns];
        let with_scale = edge_log_likelihood(
            &layout, &scaled, Some(&scales),
            Side::Tip { table: &table, codes: &codes },
            &freqs, &[1.0], &pw, 0..patterns,
        );
        prop_assert!(
            (base - with_scale).abs() < 1e-6 * base.abs().max(1.0),
            "{base} vs {with_scale}"
        );
    }

    /// The log-likelihood is invariant under moving probability flow
    /// across the edge: L(u, P·v) must equal L computed with the tip table
    /// that embeds the same P.
    #[test]
    fn tip_table_equals_explicit_indicator(
        patterns in 1usize..8,
        t in 0.01f64..2.0,
    ) {
        let layout = Layout::new(patterns, 1, 4);
        let pm = stochastic_pmatrix(t, 1);
        let table = TipTable::build(&layout, &pm, &DNA_MASKS);
        let codes: Vec<u8> = (0..patterns).map(|i| ((i * 3) % 4) as u8).collect();
        // Explicit indicator CLV for the same characters.
        let mut tip_clv = vec![0.0; layout.clv_len()];
        for (p, &c) in codes.iter().enumerate() {
            tip_clv[p * 4 + c as usize] = 1.0;
        }
        let u: Vec<f64> =
            (0..layout.clv_len()).map(|i| 0.1 + (i % 5) as f64 * 0.11).collect();
        let pw = vec![1u32; patterns];
        let freqs = [0.25; 4];
        let via_table = edge_log_likelihood(
            &layout, &u, None,
            Side::Tip { table: &table, codes: &codes },
            &freqs, &[1.0], &pw, 0..patterns,
        );
        let via_clv = edge_log_likelihood(
            &layout, &u, None,
            Side::Clv { clv: &tip_clv, scale: None, pmatrix: &pm },
            &freqs, &[1.0], &pw, 0..patterns,
        );
        prop_assert!((via_table - via_clv).abs() < 1e-10);
    }

    /// LN_SCALE bookkeeping: adding one scaler count shifts lnL by exactly
    /// −LN_SCALE per pattern weight.
    #[test]
    fn scaler_shift_is_exact(weight in 1u32..20) {
        let layout = Layout::new(1, 1, 4);
        let pm = stochastic_pmatrix(0.3, 1);
        let u = vec![0.3, 0.4, 0.2, 0.1];
        let v = vec![0.25; 4];
        let no = edge_log_likelihood(
            &layout, &u, None,
            Side::Clv { clv: &v, scale: None, pmatrix: &pm },
            &[0.25; 4], &[1.0], &[weight], 0..1,
        );
        let scales = [1u32];
        let yes = edge_log_likelihood(
            &layout, &u, Some(&[0u32]),
            Side::Clv { clv: &v, scale: Some(&scales), pmatrix: &pm },
            &[0.25; 4], &[1.0], &[weight], 0..1,
        );
        prop_assert!((no - yes - weight as f64 * LN_SCALE).abs() < 1e-9);
    }
}
