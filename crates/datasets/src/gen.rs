//! Dataset instantiation.

use crate::sim::{evolve_query, simulate};
use crate::spec::DatasetSpec;
use phylo_models::gamma::GammaMode;
use phylo_models::{aa, dna, DiscreteGamma, SubstModel};
use phylo_seq::alphabet::AlphabetKind;
use phylo_seq::{Msa, Sequence};
use phylo_tree::{generate as treegen, NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully instantiated synthetic dataset.
pub struct Dataset {
    /// The specification it was generated from.
    pub spec: DatasetSpec,
    /// The reference tree.
    pub tree: Tree,
    /// The reference alignment (rows named after the tree's taxa).
    pub reference: Msa,
    /// Aligned query sequences.
    pub queries: Vec<Sequence>,
    /// The substitution model the data was simulated under (and should be
    /// analyzed with).
    pub model: SubstModel,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.spec.name)
            .field("leaves", &self.tree.n_leaves())
            .field("sites", &self.reference.n_sites())
            .field("queries", &self.queries.len())
            .field("alphabet", &self.spec.alphabet)
            .finish()
    }
}

/// The model a spec calls for: GTR-like (NT) or synthetic-empirical (AA),
/// both with 4-category mean-discretized Γ rates.
pub fn model_for(spec: &DatasetSpec) -> SubstModel {
    let gamma = DiscreteGamma::new(spec.gamma_alpha, 4, GammaMode::Mean)
        .expect("spec gamma parameters are valid");
    match spec.alphabet {
        AlphabetKind::Dna => {
            // A mildly informative GTR: unequal frequencies, transition
            // bias — representative of 16S-style data.
            let rates = [1.0, 2.5, 1.2, 0.8, 3.1, 1.0];
            let freqs = [0.30, 0.21, 0.27, 0.22];
            SubstModel::new(&dna::gtr(&rates, &freqs).expect("static GTR is valid"), gamma)
                .expect("GTR compiles")
        }
        AlphabetKind::Protein => {
            SubstModel::new(&aa::synthetic_aa(spec.seed).expect("synthetic AA is valid"), gamma)
                .expect("AA model compiles")
        }
    }
}

/// Generates the dataset a spec describes. Deterministic in `spec.seed`.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let tree = treegen::yule(spec.leaves, spec.mean_branch_length, &mut rng)
        .expect("spec leaf counts are >= 3");
    let model = model_for(spec);
    let sim = simulate(&tree, &model, spec.sites, &mut rng);
    let alphabet = spec.alphabet.alphabet();
    let _ = alphabet;
    // Reference rows from the leaf states.
    let rows: Vec<Sequence> = (0..tree.n_leaves())
        .map(|i| {
            Sequence::from_codes(
                tree.taxon(NodeId(i as u32)).to_string(),
                spec.alphabet,
                sim.states[i].clone(),
            )
            .expect("simulated states are concrete codes")
        })
        .collect();
    let reference = Msa::new(rows).expect("simulated rows are rectangular");
    // Queries: evolve off random nodes, then fragment.
    let unknown = spec.alphabet.alphabet().unknown_code();
    let queries: Vec<Sequence> = (0..spec.n_queries)
        .map(|qi| {
            let origin = rng.gen_range(0..tree.n_nodes());
            let pendant = -spec.mean_branch_length * rng.gen_range(1e-6f64..1.0).ln();
            let mut codes =
                evolve_query(&sim.states[origin], &sim.site_rates, &model, pendant, &mut rng);
            if spec.query_fragment > 0.0 {
                // Keep a contiguous window of (1 - fragment) of the sites;
                // mask the flanks like an amplicon read.
                let keep = ((1.0 - spec.query_fragment) * spec.sites as f64) as usize;
                let keep = keep.clamp(spec.sites.min(20), spec.sites);
                let start = rng.gen_range(0..=spec.sites - keep);
                for (i, c) in codes.iter_mut().enumerate() {
                    if i < start || i >= start + keep {
                        *c = unknown;
                    }
                }
            }
            Sequence::from_codes(format!("Q{qi:06}"), spec.alphabet, codes)
                .expect("query codes are valid")
        })
        .collect();
    Dataset { spec: spec.clone(), tree, reference, queries, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{neotrop, pro_ref, serratus, Scale};

    #[test]
    fn ci_scale_datasets_build() {
        for spec in [neotrop(Scale::Ci), serratus(Scale::Ci), pro_ref(Scale::Ci)] {
            let d = generate(&spec);
            assert_eq!(d.tree.n_leaves(), spec.leaves);
            assert_eq!(d.reference.n_sites(), spec.sites);
            assert_eq!(d.queries.len(), spec.n_queries);
            assert_eq!(d.reference.n_rows(), spec.leaves);
            for q in &d.queries {
                assert_eq!(q.len(), spec.sites);
            }
        }
    }

    #[test]
    fn deterministic_per_spec() {
        let spec = neotrop(Scale::Ci);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(phylo_tree::newick::write(&a.tree), phylo_tree::newick::write(&b.tree));
        assert_eq!(a.reference.row(0).codes(), b.reference.row(0).codes());
        assert_eq!(a.queries[0].codes(), b.queries[0].codes());
    }

    #[test]
    fn fragmented_queries_have_gap_flanks() {
        let spec = neotrop(Scale::Ci); // query_fragment = 0.5
        let d = generate(&spec);
        let unknown = spec.alphabet.alphabet().unknown_code();
        let masked: usize = d.queries[0].codes().iter().filter(|&&c| c == unknown).count();
        // Roughly half the sites are masked (evolution can also produce
        // a few ambiguous codes, so just check the order of magnitude).
        assert!(masked * 3 >= spec.sites, "only {masked}/{} masked", spec.sites);
    }

    #[test]
    fn serratus_is_protein() {
        let d = generate(&serratus(Scale::Ci));
        assert_eq!(d.model.n_states(), 20);
        assert_eq!(d.reference.kind(), AlphabetKind::Protein);
    }

    #[test]
    fn reference_rows_match_taxa() {
        let d = generate(&pro_ref(Scale::Ci));
        for i in 0..d.tree.n_leaves() {
            let name = d.tree.taxon(NodeId(i as u32));
            assert!(d.reference.row_by_name(name).is_some(), "taxon {name} missing");
        }
    }
}
