//! Synthetic analogues of the paper's empirical datasets.
//!
//! The paper evaluates on three datasets chosen to stress different
//! dimensions (Table I):
//!
//! | name     | leaves | sites  | #QS    | type |
//! |----------|--------|--------|--------|------|
//! | neotrop  | 512    | 4 686  | 95 417 | NT   |
//! | serratus | 546    | 10 170 | 136    | AA   |
//! | pro_ref  | 20 000 | 1 582  | 3 333  | NT   |
//!
//! The real alignments are not redistributable (and irrelevant to the
//! memory/runtime behavior under study — see `DESIGN.md` §2), so this
//! crate *simulates* them: a Yule reference tree, sequences evolved along
//! it under the study model, and query sequences evolved off random nodes
//! and fragmented like amplicon reads. Three scales are provided:
//! [`Scale::Paper`] (the table above), [`Scale::Bench`] (minutes-long
//! harness runs), and [`Scale::Ci`] (sub-second tests).

pub mod gen;
pub mod sim;
pub mod spec;

pub use gen::{generate, Dataset};
pub use spec::{neotrop, pro_ref, serratus, DatasetSpec, Scale};
