//! Sequence simulation along a tree.
//!
//! The standard generative process: per site, draw a rate category and a
//! root state from the stationary distribution, then walk the tree
//! sampling child states from `P(t · rate)` rows. Simulated data is, by
//! construction, exactly the regime the likelihood model assumes — which
//! is what makes synthetic datasets a faithful substitute for measuring
//! memory/runtime behavior.

use phylo_models::SubstModel;
use phylo_tree::{NodeId, Tree};
use rand::Rng;

/// Character states at every node of the tree (leaves and inner), plus the
/// per-site rate category assignment.
#[derive(Debug, Clone)]
pub struct SimulatedStates {
    /// `states[node][site]` — sampled concrete state codes.
    pub states: Vec<Vec<u8>>,
    /// Rate category per site.
    pub site_rates: Vec<u8>,
}

/// Samples one state from a probability row via inverse CDF.
fn sample_row(row: &[f64], rng: &mut impl Rng) -> u8 {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in row.iter().enumerate() {
        acc += p;
        if u < acc {
            return i as u8;
        }
    }
    (row.len() - 1) as u8
}

/// Simulates states for every node of `tree` under `model`.
pub fn simulate(
    tree: &Tree,
    model: &SubstModel,
    sites: usize,
    rng: &mut impl Rng,
) -> SimulatedStates {
    let states = model.n_states();
    let rates = model.gamma().rates();
    let n_nodes = tree.n_nodes();
    let mut out = vec![vec![0u8; sites]; n_nodes];
    // Per-site rate categories (uniform weights).
    let site_rates: Vec<u8> = (0..sites).map(|_| rng.gen_range(0..rates.len()) as u8).collect();
    // Root the walk at the first inner node.
    let root = NodeId(tree.n_leaves() as u32);
    for site in 0..sites {
        out[root.idx()][site] = sample_row(model.freqs(), rng);
    }
    // Precompute per-edge per-rate transition matrices once.
    let mut pmats: Vec<Vec<f64>> = Vec::with_capacity(tree.n_edges());
    for e in tree.all_edges() {
        let mut pm = vec![0.0; rates.len() * states * states];
        model.transition_matrices(tree.edge_length(e), &mut pm);
        pmats.push(pm);
    }
    // BFS from the root, sampling each child from its parent.
    let mut stack = vec![root];
    let mut visited = vec![false; n_nodes];
    visited[root.idx()] = true;
    while let Some(u) = stack.pop() {
        for &(v, e) in tree.neighbors(u) {
            if visited[v.idx()] {
                continue;
            }
            visited[v.idx()] = true;
            let pm = &pmats[e.idx()];
            for site in 0..sites {
                let r = site_rates[site] as usize;
                let parent_state = out[u.idx()][site] as usize;
                let row = &pm[r * states * states + parent_state * states
                    ..r * states * states + (parent_state + 1) * states];
                out[v.idx()][site] = sample_row(row, rng);
            }
            stack.push(v);
        }
    }
    SimulatedStates { states: out, site_rates }
}

/// Evolves a fresh sequence from `origin`'s states along a pendant branch
/// of length `t` (used to fabricate query sequences).
pub fn evolve_query(
    source: &[u8],
    site_rates: &[u8],
    model: &SubstModel,
    t: f64,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let states = model.n_states();
    let rates = model.gamma().rates();
    let mut pm = vec![0.0; rates.len() * states * states];
    model.transition_matrices(t, &mut pm);
    source
        .iter()
        .zip(site_rates)
        .map(|(&s, &r)| {
            let row = &pm[r as usize * states * states + s as usize * states
                ..r as usize * states * states + (s as usize + 1) * states];
            sample_row(row, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{dna, DiscreteGamma, SubstModel};
    use phylo_tree::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jc() -> SubstModel {
        SubstModel::new(&dna::jc69(), DiscreteGamma::none()).unwrap()
    }

    #[test]
    fn simulation_covers_all_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = generate::yule(20, 0.1, &mut rng).unwrap();
        let sim = simulate(&tree, &jc(), 50, &mut rng);
        assert_eq!(sim.states.len(), tree.n_nodes());
        for s in &sim.states {
            assert_eq!(s.len(), 50);
            assert!(s.iter().all(|&c| c < 4));
        }
    }

    #[test]
    fn short_branches_preserve_states() {
        // With near-zero branch lengths the whole tree shares the root's
        // states.
        let mut rng = StdRng::seed_from_u64(2);
        let tree = generate::yule(10, 1e-9, &mut rng).unwrap();
        let sim = simulate(&tree, &jc(), 30, &mut rng);
        let root = sim.states[10].clone();
        for s in &sim.states {
            assert_eq!(s, &root);
        }
    }

    #[test]
    fn long_branches_decorrelate() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = generate::yule(8, 50.0, &mut rng).unwrap();
        let sim = simulate(&tree, &jc(), 2000, &mut rng);
        // Two random leaves should agree at ≈25% of sites.
        let a = &sim.states[0];
        let b = &sim.states[1];
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / 2000.0;
        assert!((agree - 0.25).abs() < 0.06, "agreement {agree}");
    }

    #[test]
    fn query_evolution_preserves_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = generate::yule(8, 0.1, &mut rng).unwrap();
        let model = jc();
        let sim = simulate(&tree, &model, 40, &mut rng);
        let q = evolve_query(&sim.states[0], &sim.site_rates, &model, 0.05, &mut rng);
        assert_eq!(q.len(), 40);
        // At t=0.05 most characters are preserved.
        let same = q.iter().zip(&sim.states[0]).filter(|(a, b)| a == b).count();
        assert!(same > 30, "only {same}/40 preserved");
    }

    #[test]
    fn deterministic_per_seed() {
        let tree = generate::yule(12, 0.1, &mut StdRng::seed_from_u64(9)).unwrap();
        let a = simulate(&tree, &jc(), 25, &mut StdRng::seed_from_u64(5));
        let b = simulate(&tree, &jc(), 25, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.states, b.states);
    }
}
