//! Dataset specifications and scaling.

use phylo_seq::alphabet::AlphabetKind;

/// How large to instantiate a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's dimensions (Table I). Heavy: use for full
    /// reproduction runs.
    Paper,
    /// Reduced dimensions that preserve the datasets' *relative*
    /// characteristics; minutes per experiment.
    #[default]
    Bench,
    /// Tiny instances for unit/integration tests.
    Ci,
}

impl Scale {
    /// Parses `paper` / `bench` / `ci` (harness CLI flag).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "bench" => Some(Scale::Bench),
            "ci" => Some(Scale::Ci),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Paper => write!(f, "paper"),
            Scale::Bench => write!(f, "bench"),
            Scale::Ci => write!(f, "ci"),
        }
    }
}

/// Everything needed to instantiate a synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (matches the paper's Table I).
    pub name: &'static str,
    /// Reference-tree leaves.
    pub leaves: usize,
    /// Alignment columns.
    pub sites: usize,
    /// Query sequences.
    pub n_queries: usize,
    /// Character alphabet.
    pub alphabet: AlphabetKind,
    /// Γ shape parameter (4 categories).
    pub gamma_alpha: f64,
    /// Mean branch length of the reference tree.
    pub mean_branch_length: f64,
    /// Fraction of each query masked out as gaps (amplicon-style
    /// fragments).
    pub query_fragment: f64,
    /// RNG seed (fixed per dataset so every run sees identical data).
    pub seed: u64,
}

impl DatasetSpec {
    /// Scales leaves/sites/queries down for `Bench`/`Ci` runs.
    fn scaled(mut self, scale: Scale) -> DatasetSpec {
        let (leaf_div, site_div, query_div) = match scale {
            Scale::Paper => (1, 1, 1),
            Scale::Bench => (8, 8, 64),
            Scale::Ci => (32, 64, 512),
        };
        self.leaves = (self.leaves / leaf_div).max(8);
        self.sites = (self.sites / site_div).max(40);
        self.n_queries = (self.n_queries / query_div).max(4);
        self
    }
}

/// The `neotrop` analogue: many queries, medium tree (QS-volume
/// dimension).
pub fn neotrop(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "neotrop",
        leaves: 512,
        sites: 4686,
        n_queries: 95_417,
        alphabet: AlphabetKind::Dna,
        gamma_alpha: 0.5,
        mean_branch_length: 0.08,
        query_fragment: 0.5,
        seed: 0x6e656f74,
    }
    .scaled(scale)
}

/// The `serratus` analogue: wide amino-acid alignment (CLV-size
/// dimension).
pub fn serratus(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "serratus",
        leaves: 546,
        sites: 10_170,
        n_queries: 136,
        alphabet: AlphabetKind::Protein,
        gamma_alpha: 0.8,
        mean_branch_length: 0.12,
        query_fragment: 0.0,
        seed: 0x73657272,
    }
    .scaled(scale)
}

/// The `pro_ref` analogue: very large reference tree (RT-size dimension).
pub fn pro_ref(scale: Scale) -> DatasetSpec {
    DatasetSpec {
        name: "pro_ref",
        leaves: 20_000,
        sites: 1582,
        n_queries: 3333,
        alphabet: AlphabetKind::Dna,
        gamma_alpha: 0.6,
        mean_branch_length: 0.05,
        query_fragment: 0.3,
        seed: 0x70726f72,
    }
    .scaled(scale)
}

/// All three paper datasets at a scale.
pub fn all(scale: Scale) -> [DatasetSpec; 3] {
    [neotrop(scale), serratus(scale), pro_ref(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let n = neotrop(Scale::Paper);
        assert_eq!((n.leaves, n.sites, n.n_queries), (512, 4686, 95_417));
        let s = serratus(Scale::Paper);
        assert_eq!((s.leaves, s.sites, s.n_queries), (546, 10_170, 136));
        assert_eq!(s.alphabet, AlphabetKind::Protein);
        let p = pro_ref(Scale::Paper);
        assert_eq!((p.leaves, p.sites, p.n_queries), (20_000, 1582, 3333));
    }

    #[test]
    fn scaling_preserves_ordering() {
        for scale in [Scale::Bench, Scale::Ci] {
            let (n, s, p) = (neotrop(scale), serratus(scale), pro_ref(scale));
            // pro_ref keeps the largest tree; serratus the widest
            // alignment; neotrop the most queries.
            assert!(p.leaves > n.leaves && p.leaves > s.leaves);
            assert!(s.sites > n.sites && s.sites > p.sites);
            assert!(n.n_queries > s.n_queries && n.n_queries > p.n_queries);
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bench"), Some(Scale::Bench));
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("huge"), None);
    }
}
